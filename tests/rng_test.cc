#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace targad {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversAllResidues) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngDeathTest, UniformIntZeroAborts) {
  Rng rng(1);
  EXPECT_DEATH({ (void)rng.UniformInt(0); }, "UniformInt");
}

TEST(RngTest, NormalMomentsMatchStandard) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParamsShiftsAndScales) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(29);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(31);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) counts[rng.Categorical(weights)]++;
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.6, 0.01);
}

TEST(RngDeathTest, CategoricalWithNoMassAborts) {
  Rng rng(1);
  std::vector<double> weights = {0.0, -1.0};
  EXPECT_DEATH({ (void)rng.Categorical(weights); }, "positive total");
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i;
  std::vector<int> original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);  // Astronomically unlikely to be identity.
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(41);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (size_t s : sample) EXPECT_LT(s, 50u);
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(43);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(123);
  Rng forked = a.Fork();
  // The fork must differ from the parent's continued stream.
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != forked.Next()) ++differing;
  }
  EXPECT_GT(differing, 12);
}

// Property sweep: UniformInt(n) stays in range for many n.
class RngRangeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngRangeTest, UniformIntStaysInRange) {
  Rng rng(GetParam());
  const uint64_t n = GetParam() % 97 + 1;
  for (int i = 0; i < 500; ++i) EXPECT_LT(rng.UniformInt(n), n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngRangeTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace targad
