#include "nn/losses.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace targad {
namespace nn {
namespace {

Matrix RandomLogits(size_t rows, size_t cols, uint64_t seed, double scale = 2.0) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.Uniform(-scale, scale);
  return m;
}

// Central finite difference of a scalar loss with respect to logits.
template <typename LossFn>
double NumericGrad(const Matrix& logits, size_t flat_index, const LossFn& fn,
                   double h = 1e-6) {
  Matrix plus = logits, minus = logits;
  plus.data()[flat_index] += h;
  minus.data()[flat_index] -= h;
  return (fn(plus).loss - fn(minus).loss) / (2.0 * h);
}

TEST(SoftmaxTest, RowsSumToOne) {
  Matrix logits = RandomLogits(6, 5, 1, 10.0);
  Matrix p = SoftmaxRows(logits);
  for (size_t i = 0; i < p.rows(); ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < p.cols(); ++j) {
      EXPECT_GT(p.At(i, j), 0.0);
      sum += p.At(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(SoftmaxTest, StableUnderLargeLogits) {
  Matrix logits(1, 3, {1000.0, 999.0, -1000.0});
  Matrix p = SoftmaxRows(logits);
  EXPECT_FALSE(std::isnan(p.At(0, 0)));
  EXPECT_GT(p.At(0, 0), p.At(0, 1));
  EXPECT_NEAR(p.At(0, 2), 0.0, 1e-12);
}

TEST(SoftmaxTest, ShiftInvariance) {
  Matrix a(1, 3, {1.0, 2.0, 3.0});
  Matrix b(1, 3, {101.0, 102.0, 103.0});
  Matrix pa = SoftmaxRows(a), pb = SoftmaxRows(b);
  for (size_t j = 0; j < 3; ++j) EXPECT_NEAR(pa.At(0, j), pb.At(0, j), 1e-12);
}

TEST(LogSumExpTest, MatchesNaiveOnModerateValues) {
  Matrix logits(1, 4, {0.5, -1.0, 2.0, 0.0});
  const double lse = LogSumExpRows(logits, 0, 4)[0];
  double naive = 0.0;
  for (size_t j = 0; j < 4; ++j) naive += std::exp(logits.At(0, j));
  EXPECT_NEAR(lse, std::log(naive), 1e-12);
}

TEST(LogSumExpTest, SubRangeAndStability) {
  Matrix logits(1, 4, {800.0, 700.0, 1.0, 2.0});
  const double lse_front = LogSumExpRows(logits, 0, 2)[0];
  EXPECT_NEAR(lse_front, 800.0 + std::log1p(std::exp(-100.0)), 1e-9);
  const double lse_back = LogSumExpRows(logits, 2, 4)[0];
  EXPECT_NEAR(lse_back, std::log(std::exp(1.0) + std::exp(2.0)), 1e-12);
}

TEST(RowSquaredErrorsTest, KnownValues) {
  Matrix pred(2, 2, {1, 2, 3, 4});
  Matrix target(2, 2, {0, 2, 3, 1});
  const auto errs = RowSquaredErrors(pred, target);
  EXPECT_DOUBLE_EQ(errs[0], 1.0);
  EXPECT_DOUBLE_EQ(errs[1], 9.0);
}

TEST(MseLossTest, ValueAndGradient) {
  Matrix pred = RandomLogits(4, 3, 2);
  Matrix target = RandomLogits(4, 3, 3);
  LossResult lr = MseLoss(pred, target);
  // Value: mean over rows of row squared errors.
  const auto errs = RowSquaredErrors(pred, target);
  double expect = 0.0;
  for (double e : errs) expect += e;
  EXPECT_NEAR(lr.loss, expect / 4.0, 1e-12);
  // Gradient vs finite differences at a few entries.
  auto fn = [&target](const Matrix& p) { return MseLoss(p, target); };
  for (size_t idx : {0UL, 5UL, 11UL}) {
    EXPECT_NEAR(lr.grad.data()[idx], NumericGrad(pred, idx, fn), 1e-5);
  }
}

TEST(InverseErrorLossTest, PenalizesGoodReconstruction) {
  Matrix target(1, 2, {0.5, 0.5});
  Matrix close(1, 2, {0.51, 0.5});
  Matrix far(1, 2, {2.0, 2.0});
  EXPECT_GT(InverseErrorLoss(close, target).loss,
            InverseErrorLoss(far, target).loss);
}

TEST(InverseErrorLossTest, GradientMatchesFiniteDifferences) {
  Matrix pred = RandomLogits(3, 4, 5);
  Matrix target = RandomLogits(3, 4, 6);
  LossResult lr = InverseErrorLoss(pred, target);
  auto fn = [&target](const Matrix& p) { return InverseErrorLoss(p, target); };
  for (size_t idx : {0UL, 4UL, 11UL}) {
    EXPECT_NEAR(lr.grad.data()[idx], NumericGrad(pred, idx, fn), 1e-4);
  }
}

TEST(CrossEntropyTest, OneHotMatchesNegLogProb) {
  Matrix logits(1, 3, {1.0, 2.0, 0.5});
  Matrix target(1, 3, {0.0, 1.0, 0.0});
  LossResult lr = WeightedSoftCrossEntropy(logits, target, {}, 1.0);
  const Matrix p = SoftmaxRows(logits);
  EXPECT_NEAR(lr.loss, -std::log(p.At(0, 1)), 1e-12);
}

TEST(CrossEntropyTest, SoftTargetGradientIsPMinusT) {
  Matrix logits = RandomLogits(2, 4, 7);
  Matrix target(2, 4, 0.25);  // Uniform soft target.
  LossResult lr = WeightedSoftCrossEntropy(logits, target, {}, 2.0);
  const Matrix p = SoftmaxRows(logits);
  for (size_t i = 0; i < logits.size(); ++i) {
    EXPECT_NEAR(lr.grad.data()[i], (p.data()[i] - 0.25) / 2.0, 1e-12);
  }
}

TEST(CrossEntropyTest, WeightsScaleLossAndGrad) {
  Matrix logits = RandomLogits(2, 3, 8);
  Matrix target(2, 3, {1, 0, 0, 0, 1, 0});
  LossResult unweighted = WeightedSoftCrossEntropy(logits, target, {}, 2.0);
  LossResult weighted =
      WeightedSoftCrossEntropy(logits, target, {2.0, 2.0}, 2.0);
  EXPECT_NEAR(weighted.loss, 2.0 * unweighted.loss, 1e-12);
  for (size_t i = 0; i < logits.size(); ++i) {
    EXPECT_NEAR(weighted.grad.data()[i], 2.0 * unweighted.grad.data()[i], 1e-12);
  }
}

TEST(CrossEntropyTest, GradientMatchesFiniteDifferences) {
  Matrix logits = RandomLogits(3, 5, 9);
  Rng rng(10);
  Matrix target(3, 5, 0.0);
  // Random soft targets normalized per row.
  for (size_t i = 0; i < 3; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < 5; ++j) {
      target.At(i, j) = rng.Uniform();
      sum += target.At(i, j);
    }
    for (size_t j = 0; j < 5; ++j) target.At(i, j) /= sum;
  }
  std::vector<double> w = {0.5, 1.5, 1.0};
  LossResult lr = WeightedSoftCrossEntropy(logits, target, w, 3.0);
  auto fn = [&](const Matrix& z) {
    return WeightedSoftCrossEntropy(z, target, w, 3.0);
  };
  for (size_t idx : {0UL, 7UL, 14UL}) {
    EXPECT_NEAR(lr.grad.data()[idx], NumericGrad(logits, idx, fn), 1e-5);
  }
}

TEST(EntropyTest, UniformMaximizesConfidentMinimizes) {
  Matrix uniform(1, 4, {1.0, 1.0, 1.0, 1.0});
  Matrix confident(1, 4, {10.0, -10.0, -10.0, -10.0});
  const double h_uniform = SoftmaxEntropy(uniform, 1.0).loss;
  const double h_confident = SoftmaxEntropy(confident, 1.0).loss;
  EXPECT_NEAR(h_uniform, std::log(4.0), 1e-9);
  EXPECT_LT(h_confident, 1e-3);
  EXPECT_GT(h_uniform, h_confident);
}

TEST(EntropyTest, NonNegative) {
  Matrix logits = RandomLogits(5, 6, 11, 8.0);
  EXPECT_GE(SoftmaxEntropy(logits, 5.0).loss, 0.0);
}

TEST(EntropyTest, GradientMatchesFiniteDifferences) {
  Matrix logits = RandomLogits(2, 4, 12);
  LossResult lr = SoftmaxEntropy(logits, 2.0);
  auto fn = [](const Matrix& z) { return SoftmaxEntropy(z, 2.0); };
  for (size_t idx = 0; idx < logits.size(); ++idx) {
    EXPECT_NEAR(lr.grad.data()[idx], NumericGrad(logits, idx, fn), 1e-5);
  }
}

TEST(MaxSoftmaxProbTest, SubRangeSelectsCorrectColumns) {
  Matrix logits(1, 4, {0.0, 3.0, 5.0, 1.0});
  const Matrix p = SoftmaxRows(logits);
  EXPECT_NEAR(MaxSoftmaxProb(logits, 0, 2)[0], p.At(0, 1), 1e-12);
  EXPECT_NEAR(MaxSoftmaxProb(logits, 0, 4)[0], p.At(0, 2), 1e-12);
}

TEST(BceTest, KnownValueAtZeroLogit) {
  Matrix logits(1, 1, {0.0});
  LossResult lr = BinaryCrossEntropyWithLogits(logits, {1.0}, {}, 1.0);
  EXPECT_NEAR(lr.loss, std::log(2.0), 1e-12);
  EXPECT_NEAR(lr.grad.At(0, 0), 0.5 - 1.0, 1e-12);
}

TEST(BceTest, StableAtExtremeLogits) {
  Matrix logits(2, 1, {500.0, -500.0});
  LossResult lr = BinaryCrossEntropyWithLogits(logits, {1.0, 0.0}, {}, 2.0);
  EXPECT_FALSE(std::isnan(lr.loss));
  EXPECT_NEAR(lr.loss, 0.0, 1e-9);
}

TEST(BceTest, GradientMatchesFiniteDifferences) {
  Matrix logits = RandomLogits(4, 1, 13);
  std::vector<double> targets = {1.0, 0.0, 1.0, 0.0};
  std::vector<double> weights = {1.0, 0.5, 2.0, 1.0};
  LossResult lr = BinaryCrossEntropyWithLogits(logits, targets, weights, 4.0);
  auto fn = [&](const Matrix& z) {
    return BinaryCrossEntropyWithLogits(z, targets, weights, 4.0);
  };
  for (size_t idx = 0; idx < 4; ++idx) {
    EXPECT_NEAR(lr.grad.data()[idx], NumericGrad(logits, idx, fn), 1e-6);
  }
}

TEST(SigmoidColumnTest, MatchesClosedForm) {
  Matrix logits(3, 1, {0.0, 2.0, -2.0});
  const auto p = SigmoidColumn(logits);
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[1], 1.0 / (1.0 + std::exp(-2.0)), 1e-12);
  EXPECT_NEAR(p[2], 1.0 / (1.0 + std::exp(2.0)), 1e-12);
}

}  // namespace
}  // namespace nn
}  // namespace targad
