#include "nn/artifact.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "core/frozen_scorer.h"
#include "core/pipeline.h"

namespace targad {
namespace nn {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("targad_artifact_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }

 private:
  static int counter_;
  fs::path path_;
};

int TempDir::counter_ = 0;

void WriteBytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A writer holding two float32 tensors and a meta blob — the smallest
// artifact that exercises every layout region.
ArtifactWriter SmallWriter(const std::vector<float>& a,
                           const std::vector<float>& b) {
  ArtifactWriter writer(Dtype::kFloat32);
  writer.set_meta("schema: toy");
  writer.AddTensor(2, 3, a.data());
  writer.AddTensor(1, 4, b.data());
  return writer;
}

TEST(ArtifactTest, WriteMapRoundTripPreservesEverything) {
  TempDir dir;
  const fs::path path = dir.path() / "toy.tgz1";
  const std::vector<float> a = {1.0f, -2.5f, 3.25f, 0.0f, 7.5f, -0.125f};
  const std::vector<float> b = {9.0f, 8.0f, 7.0f, 6.0f};
  ASSERT_TRUE(SmallWriter(a, b).WriteFile(path.string()).ok());

  auto mapped = MappedArtifact::Map(path.string());
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const MappedArtifact& artifact = **mapped;
  EXPECT_EQ(artifact.version(), 1u);
  EXPECT_EQ(artifact.dtype(), Dtype::kFloat32);
  EXPECT_EQ(artifact.meta(), "schema: toy");
  ASSERT_EQ(artifact.num_sections(), 2u);
  EXPECT_EQ(artifact.section(0).rows, 2u);
  EXPECT_EQ(artifact.section(0).cols, 3u);
  EXPECT_EQ(artifact.section(1).rows, 1u);
  EXPECT_EQ(artifact.section(1).cols, 4u);

  auto t0 = artifact.Tensor<float>(0, 2, 3);
  ASSERT_TRUE(t0.ok());
  EXPECT_EQ(0, std::memcmp(*t0, a.data(), a.size() * sizeof(float)));
  auto t1 = artifact.Tensor<float>(1, 1, 4);
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(0, std::memcmp(*t1, b.data(), b.size() * sizeof(float)));

  // The layout contract: every payload pointer is 64-byte aligned.
  for (size_t i = 0; i < artifact.num_sections(); ++i) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(artifact.section(i).data) % 64, 0u)
        << "section " << i;
  }
}

TEST(ArtifactTest, TensorRejectsDtypeAndShapeMismatch) {
  TempDir dir;
  const fs::path path = dir.path() / "toy.tgz1";
  const std::vector<float> a = {1, 2, 3, 4, 5, 6};
  const std::vector<float> b = {1, 2, 3, 4};
  ASSERT_TRUE(SmallWriter(a, b).WriteFile(path.string()).ok());
  auto mapped = MappedArtifact::Map(path.string());
  ASSERT_TRUE(mapped.ok());
  // Wrong element type for the stored dtype tag.
  EXPECT_FALSE((*mapped)->Tensor<double>(0, 2, 3).ok());
  // Wrong expected shape.
  EXPECT_FALSE((*mapped)->Tensor<float>(0, 3, 2).ok());
}

TEST(ArtifactTest, MapRejectsCorruptFiles) {
  TempDir dir;
  const std::vector<float> a = {1, 2, 3, 4, 5, 6};
  const std::vector<float> b = {1, 2, 3, 4};
  const std::string good = SmallWriter(a, b).Serialize();
  const fs::path path = dir.path() / "bad.tgz1";

  {  // Bad magic.
    std::string bytes = good;
    bytes[0] ^= 0x5a;
    WriteBytes(path, bytes);
    EXPECT_FALSE(MappedArtifact::Map(path.string()).ok());
  }
  {  // One flipped payload byte: the footer checksum must catch it.
    std::string bytes = good;
    bytes[bytes.size() / 2] ^= 0x01;
    WriteBytes(path, bytes);
    EXPECT_FALSE(MappedArtifact::Map(path.string()).ok());
  }
  {  // Truncated mid-payload: header file_size disagrees with the file.
    WriteBytes(path, good.substr(0, good.size() - 10));
    EXPECT_FALSE(MappedArtifact::Map(path.string()).ok());
  }
  {  // Shorter than one header.
    WriteBytes(path, good.substr(0, 20));
    EXPECT_FALSE(MappedArtifact::Map(path.string()).ok());
  }
  {  // Missing file.
    EXPECT_FALSE(
        MappedArtifact::Map((dir.path() / "absent.tgz1").string()).ok());
  }
  // The pristine bytes still map — the corruptions above, not the harness,
  // caused the rejections.
  WriteBytes(path, good);
  EXPECT_TRUE(MappedArtifact::Map(path.string()).ok());
}

TEST(ArtifactTest, MapRejectsOutOfBoundsSectionEvenWithValidChecksum) {
  TempDir dir;
  const std::vector<float> a = {1, 2, 3, 4, 5, 6};
  const std::vector<float> b = {1, 2, 3, 4};
  std::string bytes = SmallWriter(a, b).Serialize();

  // Point section 0's payload past the end of the file. The section table
  // lives at the 8-aligned offset after the meta blob ("schema: toy", 11
  // bytes, at offset 64); each descriptor is {u64 offset, u64 rows, u64
  // cols}. Recompute the footer checksum so only the bounds check can
  // reject the file.
  const size_t table_offset = (64 + 11 + 7) & ~size_t{7};
  uint64_t huge = 1ull << 40;
  std::memcpy(&bytes[table_offset], &huge, sizeof(huge));
  const uint64_t checksum = Fnv1a64(bytes.data(), bytes.size() - 8);
  std::memcpy(&bytes[bytes.size() - 8], &checksum, sizeof(checksum));

  const fs::path path = dir.path() / "oob.tgz1";
  WriteBytes(path, bytes);
  EXPECT_FALSE(MappedArtifact::Map(path.string()).ok());
}

// ---------------------------------------------------------------------------
// FrozenScorer round trip: SaveArtifact -> LoadArtifact must be
// bit-identical to the freshly frozen scorer, both dtypes.

data::RawTable MakeTrainingTable(uint64_t seed) {
  Rng rng(seed);
  data::RawTable table;
  table.column_names = {"x", "y", "channel", "label"};
  for (size_t i = 0; i < 300; ++i) {
    const bool mode = rng.Bernoulli(0.5);
    table.rows.push_back({std::to_string(rng.Normal(0.0, 1.0)),
                          std::to_string(rng.Normal(0.0, 1.0)),
                          mode ? "web" : "pos", ""});
  }
  for (size_t i = 0; i < 20; ++i) {
    table.rows.push_back({std::to_string(rng.Normal(5.0, 0.3)),
                          std::to_string(rng.Normal(5.0, 0.3)), "web",
                          "attack"});
  }
  return table;
}

core::TargAdPipeline TrainPipeline(uint64_t seed) {
  core::PipelineConfig config;
  config.model.seed = seed;
  config.model.selection.k = 2;
  config.model.selection.autoencoder.epochs = 5;
  config.model.epochs = 5;
  return core::TargAdPipeline::Train(MakeTrainingTable(seed), config)
      .ValueOrDie();
}

data::RawTable MakeScoringRows(uint64_t seed, size_t n) {
  Rng rng(seed);
  data::RawTable table;
  table.column_names = {"x", "y", "channel"};
  for (size_t i = 0; i < n; ++i) {
    table.rows.push_back({std::to_string(rng.Normal(1.0, 2.0)),
                          std::to_string(rng.Normal(1.0, 2.0)),
                          i % 2 == 0 ? "web" : "pos"});
  }
  return table;
}

class ArtifactRoundTripTest : public ::testing::TestWithParam<Dtype> {};

TEST_P(ArtifactRoundTripTest, LoadArtifactScoresBitIdentically) {
  TempDir dir;
  const Dtype dtype = GetParam();
  auto pipeline = TrainPipeline(21);
  auto frozen = pipeline.Freeze(dtype).ValueOrDie();

  const fs::path path = dir.path() / "model.tgz1";
  ASSERT_TRUE(frozen.SaveArtifact(path.string()).ok());
  auto loaded = core::FrozenScorer::LoadArtifact(path.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_TRUE(loaded->mapped());
  EXPECT_FALSE(frozen.mapped());
  EXPECT_EQ(loaded->dtype(), dtype);
  EXPECT_EQ(loaded->m(), frozen.m());
  EXPECT_EQ(loaded->k(), frozen.k());
  EXPECT_EQ(loaded->class_names(), frozen.class_names());
  EXPECT_EQ(loaded->feature_columns(), frozen.feature_columns());
  EXPECT_EQ(loaded->label_column(), frozen.label_column());

  const data::RawTable rows = MakeScoringRows(22, 64);
  auto expected = frozen.Score(rows);
  auto actual = loaded->Score(rows);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  ASSERT_EQ(expected->size(), actual->size());
  for (size_t i = 0; i < expected->size(); ++i) {
    // Bit identity, not tolerance: the artifact stores the already-cast
    // parameters and the load path does no arithmetic.
    EXPECT_EQ((*expected)[i], (*actual)[i]) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Dtypes, ArtifactRoundTripTest,
                         ::testing::Values(Dtype::kFloat64, Dtype::kFloat32),
                         [](const ::testing::TestParamInfo<Dtype>& info) {
                           return std::string(DtypeName(info.param));
                         });

TEST(ArtifactTest, MappedScorerSurvivesFileUnlink) {
  TempDir dir;
  auto pipeline = TrainPipeline(23);
  auto frozen = pipeline.Freeze(Dtype::kFloat32).ValueOrDie();
  const fs::path path = dir.path() / "gone.tgz1";
  ASSERT_TRUE(frozen.SaveArtifact(path.string()).ok());
  auto loaded = core::FrozenScorer::LoadArtifact(path.string()).ValueOrDie();
  // POSIX keeps the mapping alive after the unlink; scoring must not fault
  // or change — this is what lets a redeploy overwrite artifacts in place.
  fs::remove(path);
  const data::RawTable rows = MakeScoringRows(24, 16);
  auto before = frozen.Score(rows).ValueOrDie();
  auto after = loaded.Score(rows).ValueOrDie();
  EXPECT_EQ(before, after);
}

TEST(ArtifactTest, LoadArtifactRejectsTamperedScorerFile) {
  TempDir dir;
  auto pipeline = TrainPipeline(25);
  auto frozen = pipeline.Freeze(Dtype::kFloat64).ValueOrDie();
  const fs::path path = dir.path() / "model.tgz1";
  ASSERT_TRUE(frozen.SaveArtifact(path.string()).ok());

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 100u);
  bytes[bytes.size() / 3] ^= 0x40;
  WriteBytes(path, bytes);
  EXPECT_FALSE(core::FrozenScorer::LoadArtifact(path.string()).ok());
}

}  // namespace
}  // namespace nn
}  // namespace targad
