#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace targad {
namespace {

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WorksWithSingleThread) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&pool, &counter] {
    counter.fetch_add(1);
    pool.Submit([&counter] { counter.fetch_add(10); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  ThreadPool::ParallelFor(64, [&hits](size_t i) { hits[i].fetch_add(1); }, 4);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroIterationsIsNoop) {
  ThreadPool::ParallelFor(0, [](size_t) { FAIL() << "must not run"; }, 4);
}

TEST(ParallelForTest, SingleThreadFallbackPreservesOrder) {
  std::vector<size_t> order;
  ThreadPool::ParallelFor(5, [&order](size_t i) { order.push_back(i); }, 1);
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ComputesCorrectAggregate) {
  std::vector<double> out(1000, 0.0);
  ThreadPool::ParallelFor(out.size(), [&out](size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 999.0 * 1000.0);
}

}  // namespace
}  // namespace targad
