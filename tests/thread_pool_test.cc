#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace targad {
namespace {

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WorksWithSingleThread) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&pool, &counter] {
    counter.fetch_add(1);
    pool.Submit([&counter] { counter.fetch_add(10); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

// Parks the pool's single worker until Release() is called, so tests can
// fill the queue deterministically.
class WorkerGate {
 public:
  void Block() {
    std::unique_lock<std::mutex> lock(mu_);
    entered_ = true;
    entered_cv_.notify_all();
    release_cv_.wait(lock, [this] { return released_; });
  }
  void WaitUntilBlocked() {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait(lock, [this] { return entered_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    release_cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable entered_cv_;
  std::condition_variable release_cv_;
  bool entered_ = false;
  bool released_ = false;
};

TEST(BoundedThreadPoolTest, TrySubmitRejectsWhenQueueFull) {
  ThreadPool pool(1, /*max_queue=*/2);
  EXPECT_EQ(pool.max_queue(), 2u);
  WorkerGate gate;
  std::atomic<int> counter{0};
  pool.Submit([&gate, &counter] {
    gate.Block();
    counter.fetch_add(1);
  });
  gate.WaitUntilBlocked();  // Worker parked; queue now empty.

  EXPECT_TRUE(pool.TrySubmit([&counter] { counter.fetch_add(1); }));
  EXPECT_TRUE(pool.TrySubmit([&counter] { counter.fetch_add(1); }));
  EXPECT_EQ(pool.queue_depth(), 2u);
  // Queue is at its bound: further TrySubmits are rejected without running.
  EXPECT_FALSE(pool.TrySubmit([&counter] { counter.fetch_add(100); }));
  EXPECT_FALSE(pool.TrySubmit([&counter] { counter.fetch_add(100); }));

  gate.Release();
  pool.Wait();
  EXPECT_EQ(counter.load(), 3);
  // Space freed up: admission works again.
  EXPECT_TRUE(pool.TrySubmit([&counter] { counter.fetch_add(1); }));
  pool.Wait();
  EXPECT_EQ(counter.load(), 4);
}

TEST(BoundedThreadPoolTest, SubmitAppliesBackpressureInsteadOfRejecting) {
  ThreadPool pool(1, /*max_queue=*/1);
  WorkerGate gate;
  std::atomic<int> counter{0};
  pool.Submit([&gate, &counter] {
    gate.Block();
    counter.fetch_add(1);
  });
  gate.WaitUntilBlocked();
  pool.Submit([&counter] { counter.fetch_add(1); });  // Fills the queue.

  // This Submit must block until the worker frees a slot — it may not drop
  // the task or return before the queue has space.
  std::atomic<bool> third_admitted{false};
  std::thread blocked_submitter([&] {
    pool.Submit([&counter] { counter.fetch_add(1); });
    third_admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_admitted.load());  // Still held back.

  gate.Release();
  blocked_submitter.join();
  EXPECT_TRUE(third_admitted.load());
  pool.Wait();
  EXPECT_EQ(counter.load(), 3);
}

// Regression test for shutdown ordering: a Submit blocked on backpressure
// when the destructor runs must be woken and rejected — its task may not be
// pushed into a queue no worker will ever drain. Tasks already accepted
// (running or queued) must still all execute.
TEST(BoundedThreadPoolTest, ShutdownRejectsBlockedSubmitWithoutLeakingTasks) {
  std::atomic<int> ran{0};
  std::atomic<bool> rejected_submit_returned{false};
  std::atomic<bool> rejected_submit_accepted{true};
  WorkerGate gate;
  std::thread blocked_submitter;
  {
    ThreadPool pool(1, /*max_queue=*/1);
    pool.Submit([&gate, &ran] {
      gate.Block();
      ran.fetch_add(1);
    });
    gate.WaitUntilBlocked();                 // Worker parked on the gate.
    pool.Submit([&ran] { ran.fetch_add(1); });  // Queued; fills the bound.

    blocked_submitter = std::thread([&] {
      // Blocks on backpressure: the queue stays full until the gated task
      // finishes, and the gate only opens after this call returns. The
      // destructor below is what unblocks it — by rejecting it.
      const bool accepted = pool.Submit([&ran] { ran.fetch_add(100); });
      rejected_submit_accepted.store(accepted);
      rejected_submit_returned.store(true);
      gate.Release();  // Now let the worker drain and the dtor join.
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(rejected_submit_returned.load());  // Genuinely blocked.
  }  // ~ThreadPool: wakes the submitter, rejects its task, drains, joins.
  blocked_submitter.join();

  EXPECT_TRUE(rejected_submit_returned.load());
  EXPECT_FALSE(rejected_submit_accepted.load());
  // The gated task and the queued task ran; the rejected one never did.
  EXPECT_EQ(ran.load(), 2);
}

// A pool that is shutting down (or already shut down from the caller's
// perspective mid-destruction) also refuses TrySubmit instead of enqueueing
// into a dead queue.
TEST(BoundedThreadPoolTest, DestructorDrainsQueuedButUnstartedWork) {
  std::atomic<int> ran{0};
  WorkerGate gate;
  std::thread releaser;
  {
    ThreadPool pool(1, /*max_queue=*/8);
    pool.Submit([&gate, &ran] {
      gate.Block();
      ran.fetch_add(1);
    });
    gate.WaitUntilBlocked();
    // Eight tasks sit queued-but-unstarted behind the parked worker.
    for (int i = 0; i < 8; ++i) {
      EXPECT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }));
    }
    // Open the gate only after the destructor has begun, so destruction
    // genuinely races a full queue of unstarted work.
    releaser = std::thread([&gate] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      gate.Release();
    });
  }  // Destructor must run all nine accepted tasks before joining.
  releaser.join();
  EXPECT_EQ(ran.load(), 9);
}

TEST(BoundedThreadPoolTest, UnboundedPoolNeverRejects) {
  ThreadPool pool(2);  // Default max_queue = 0 = unbounded.
  EXPECT_EQ(pool.max_queue(), 0u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(pool.TrySubmit([&counter] { counter.fetch_add(1); }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  ThreadPool::ParallelFor(64, [&hits](size_t i) { hits[i].fetch_add(1); }, 4);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroIterationsIsNoop) {
  ThreadPool::ParallelFor(0, [](size_t) { FAIL() << "must not run"; }, 4);
}

TEST(ParallelForTest, SingleThreadFallbackPreservesOrder) {
  std::vector<size_t> order;
  ThreadPool::ParallelFor(5, [&order](size_t i) { order.push_back(i); }, 1);
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ComputesCorrectAggregate) {
  std::vector<double> out(1000, 0.0);
  ThreadPool::ParallelFor(out.size(), [&out](size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 999.0 * 1000.0);
}

}  // namespace
}  // namespace targad
