#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace targad {
namespace {

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WorksWithSingleThread) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&pool, &counter] {
    counter.fetch_add(1);
    pool.Submit([&counter] { counter.fetch_add(10); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

// Parks the pool's single worker until Release() is called, so tests can
// fill the queue deterministically.
class WorkerGate {
 public:
  void Block() {
    std::unique_lock<std::mutex> lock(mu_);
    entered_ = true;
    entered_cv_.notify_all();
    release_cv_.wait(lock, [this] { return released_; });
  }
  void WaitUntilBlocked() {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait(lock, [this] { return entered_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    release_cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable entered_cv_;
  std::condition_variable release_cv_;
  bool entered_ = false;
  bool released_ = false;
};

TEST(BoundedThreadPoolTest, TrySubmitRejectsWhenQueueFull) {
  ThreadPool pool(1, /*max_queue=*/2);
  EXPECT_EQ(pool.max_queue(), 2u);
  WorkerGate gate;
  std::atomic<int> counter{0};
  pool.Submit([&gate, &counter] {
    gate.Block();
    counter.fetch_add(1);
  });
  gate.WaitUntilBlocked();  // Worker parked; queue now empty.

  EXPECT_TRUE(pool.TrySubmit([&counter] { counter.fetch_add(1); }));
  EXPECT_TRUE(pool.TrySubmit([&counter] { counter.fetch_add(1); }));
  EXPECT_EQ(pool.queue_depth(), 2u);
  // Queue is at its bound: further TrySubmits are rejected without running.
  EXPECT_FALSE(pool.TrySubmit([&counter] { counter.fetch_add(100); }));
  EXPECT_FALSE(pool.TrySubmit([&counter] { counter.fetch_add(100); }));

  gate.Release();
  pool.Wait();
  EXPECT_EQ(counter.load(), 3);
  // Space freed up: admission works again.
  EXPECT_TRUE(pool.TrySubmit([&counter] { counter.fetch_add(1); }));
  pool.Wait();
  EXPECT_EQ(counter.load(), 4);
}

TEST(BoundedThreadPoolTest, SubmitAppliesBackpressureInsteadOfRejecting) {
  ThreadPool pool(1, /*max_queue=*/1);
  WorkerGate gate;
  std::atomic<int> counter{0};
  pool.Submit([&gate, &counter] {
    gate.Block();
    counter.fetch_add(1);
  });
  gate.WaitUntilBlocked();
  pool.Submit([&counter] { counter.fetch_add(1); });  // Fills the queue.

  // This Submit must block until the worker frees a slot — it may not drop
  // the task or return before the queue has space.
  std::atomic<bool> third_admitted{false};
  std::thread blocked_submitter([&] {
    pool.Submit([&counter] { counter.fetch_add(1); });
    third_admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_admitted.load());  // Still held back.

  gate.Release();
  blocked_submitter.join();
  EXPECT_TRUE(third_admitted.load());
  pool.Wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(BoundedThreadPoolTest, UnboundedPoolNeverRejects) {
  ThreadPool pool(2);  // Default max_queue = 0 = unbounded.
  EXPECT_EQ(pool.max_queue(), 0u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(pool.TrySubmit([&counter] { counter.fetch_add(1); }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  ThreadPool::ParallelFor(64, [&hits](size_t i) { hits[i].fetch_add(1); }, 4);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroIterationsIsNoop) {
  ThreadPool::ParallelFor(0, [](size_t) { FAIL() << "must not run"; }, 4);
}

TEST(ParallelForTest, SingleThreadFallbackPreservesOrder) {
  std::vector<size_t> order;
  ThreadPool::ParallelFor(5, [&order](size_t i) { order.push_back(i); }, 1);
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ComputesCorrectAggregate) {
  std::vector<double> out(1000, 0.0);
  ThreadPool::ParallelFor(out.size(), [&out](size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 999.0 * 1000.0);
}

}  // namespace
}  // namespace targad
