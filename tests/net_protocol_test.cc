// Tests for the TCP serving front-end: the wire protocol pieces in
// isolation (FrameDecoder, ParseRequest, reply formatting, the shared CSV
// row splitter) and the full server over real sockets — partial frames,
// unknown-model routing, forced admission exhaustion ("ERR overloaded"),
// per-connection reply ordering, idle timeout, connection caps, and
// graceful drain with rows still in flight (the TSan-critical handshake).

#include "net/protocol.h"

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/scorer.h"
#include "net/client.h"
#include "net/metrics.h"
#include "net/server.h"
#include "serve/batch_scorer.h"
#include "serve/row_parse.h"

namespace targad {
namespace net {
namespace {

// ---------------------------------------------------------------------------
// FrameDecoder

TEST(FrameDecoderTest, SplitsLinesAndStripsCr) {
  FrameDecoder decoder(64);
  const std::string input = "PING\r\nSTATS\nQUIT\n";
  decoder.Append(input.data(), input.size());
  std::string line;
  ASSERT_EQ(decoder.ReadLine(&line), FrameDecoder::Outcome::kLine);
  EXPECT_EQ(line, "PING");
  ASSERT_EQ(decoder.ReadLine(&line), FrameDecoder::Outcome::kLine);
  EXPECT_EQ(line, "STATS");
  ASSERT_EQ(decoder.ReadLine(&line), FrameDecoder::Outcome::kLine);
  EXPECT_EQ(line, "QUIT");
  EXPECT_EQ(decoder.ReadLine(&line), FrameDecoder::Outcome::kNeedMore);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameDecoderTest, ReassemblesAcrossArbitraryAppendBoundaries) {
  const std::string wire = "SCORE default 1.5,2.5\nPING\n";
  // Every split point must produce the same two lines.
  for (size_t cut = 0; cut <= wire.size(); ++cut) {
    FrameDecoder decoder(256);
    decoder.Append(wire.data(), cut);
    std::string line;
    // Drain whatever is complete before the second half arrives.
    std::vector<std::string> lines;
    while (decoder.ReadLine(&line) == FrameDecoder::Outcome::kLine) {
      lines.push_back(line);
    }
    decoder.Append(wire.data() + cut, wire.size() - cut);
    while (decoder.ReadLine(&line) == FrameDecoder::Outcome::kLine) {
      lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), 2u) << "cut at " << cut;
    EXPECT_EQ(lines[0], "SCORE default 1.5,2.5");
    EXPECT_EQ(lines[1], "PING");
  }
}

TEST(FrameDecoderTest, OversizedLineWithoutNewlinePoisons) {
  FrameDecoder decoder(8);
  const std::string blob(9, 'x');  // no newline, over the cap
  decoder.Append(blob.data(), blob.size());
  std::string line;
  EXPECT_EQ(decoder.ReadLine(&line), FrameDecoder::Outcome::kOversized);
  // Poisoned: even a newline arriving later cannot resync.
  decoder.Append("\nPING\n", 6);
  EXPECT_EQ(decoder.ReadLine(&line), FrameDecoder::Outcome::kOversized);
}

TEST(FrameDecoderTest, OversizedTerminatedLineAlsoRejected) {
  FrameDecoder decoder(4);
  const std::string wire = "toolongline\n";
  decoder.Append(wire.data(), wire.size());
  std::string line;
  EXPECT_EQ(decoder.ReadLine(&line), FrameDecoder::Outcome::kOversized);
}

TEST(FrameDecoderTest, ExactLimitLineIsAccepted) {
  FrameDecoder decoder(4);
  decoder.Append("abcd\n", 5);
  std::string line;
  ASSERT_EQ(decoder.ReadLine(&line), FrameDecoder::Outcome::kLine);
  EXPECT_EQ(line, "abcd");
}

TEST(FrameDecoderTest, SlowTrickleStaysLinear) {
  // A long line fed one byte at a time; mostly a smoke test that the
  // scan high-water mark keeps this fast, plus correctness at the end.
  FrameDecoder decoder(1 << 20);
  std::string line;
  for (int i = 0; i < 50000; ++i) {
    decoder.Append("a", 1);
    ASSERT_EQ(decoder.ReadLine(&line), FrameDecoder::Outcome::kNeedMore);
  }
  decoder.Append("\n", 1);
  ASSERT_EQ(decoder.ReadLine(&line), FrameDecoder::Outcome::kLine);
  EXPECT_EQ(line.size(), 50000u);
}

// ---------------------------------------------------------------------------
// ParseRequest / formatting

TEST(ParseRequestTest, BareCommands) {
  ASSERT_TRUE(ParseRequest("PING").ok());
  EXPECT_EQ(ParseRequest("PING").ValueOrDie().kind, Request::Kind::kPing);
  EXPECT_EQ(ParseRequest("STATS").ValueOrDie().kind, Request::Kind::kStats);
  EXPECT_EQ(ParseRequest("QUIT").ValueOrDie().kind, Request::Kind::kQuit);
  EXPECT_FALSE(ParseRequest("PING now").ok());
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("ping").ok());  // commands are case-sensitive
  EXPECT_FALSE(ParseRequest("NOPE 1,2").ok());
}

TEST(ParseRequestTest, ScoreSplitsModelAndCells) {
  auto request = ParseRequest("SCORE fraud-v2 1.5,\"a,b\",3");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->kind, Request::Kind::kScore);
  EXPECT_EQ(request->model, "fraud-v2");
  EXPECT_EQ(request->cells_csv, "1.5,\"a,b\",3");
  EXPECT_FALSE(ParseRequest("SCORE").ok());
  EXPECT_FALSE(ParseRequest("SCORE model-only").ok());
  EXPECT_FALSE(ParseRequest("SCORE  1,2").ok());  // empty model token
}

TEST(FormattingTest, RepliesAreSingleFrames) {
  EXPECT_EQ(FormatPong(), "PONG\n");
  EXPECT_EQ(FormatOk("bye"), "OK bye\n");
  EXPECT_EQ(FormatOkScore(7.0), "OK " + FormatDouble(7.0, 6) + "\n");
  // Embedded newlines must never split a reply into two frames.
  EXPECT_EQ(FormatErr(kErrInternal, "a\nb\rc"), "ERR internal a b c\n");
}

TEST(FormattingTest, WireCodeMapsStatusCodes) {
  EXPECT_STREQ(WireCode(StatusCode::kResourceExhausted), kErrOverloaded);
  EXPECT_STREQ(WireCode(StatusCode::kNotFound), kErrNotFound);
  EXPECT_STREQ(WireCode(StatusCode::kInvalidArgument), kErrBadRequest);
  EXPECT_STREQ(WireCode(StatusCode::kOutOfRange), kErrBadRequest);
  EXPECT_STREQ(WireCode(StatusCode::kFailedPrecondition), kErrUnavailable);
  EXPECT_STREQ(WireCode(StatusCode::kInternal), kErrInternal);
}

// ---------------------------------------------------------------------------
// serve::SplitDataRecord (shared stdio/TCP row splitter)

TEST(RowParseTest, SplitsCellsAndRoutingPrefix) {
  serve::DataRecord plain = serve::SplitDataRecord("1,2,3", -1);
  EXPECT_FALSE(plain.routed);
  EXPECT_EQ(plain.cells, (std::vector<std::string>{"1", "2", "3"}));

  serve::DataRecord routed = serve::SplitDataRecord("model=alt,1,2", -1);
  EXPECT_TRUE(routed.routed);
  EXPECT_EQ(routed.model, "alt");
  EXPECT_EQ(routed.cells, (std::vector<std::string>{"1", "2"}));

  // The label column index counts data cells, after the routing cell.
  serve::DataRecord labeled = serve::SplitDataRecord("model=alt,1,y,2", 1);
  EXPECT_EQ(labeled.cells, (std::vector<std::string>{"1", "2"}));
}

// ---------------------------------------------------------------------------
// End-to-end over real sockets

/// Blocks scorer worker threads inside Score until opened, and lets the
/// test wait until a worker has actually entered (for deterministic
/// overload / drain-while-in-flight schedules).
class Gate {
 public:
  void WaitUntilEntered() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return entered_ > 0; });
  }

  void BlockHere() {
    std::unique_lock<std::mutex> lock(mu_);
    ++entered_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return open_; });
  }

  void Open() {
    std::unique_lock<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int entered_ = 0;
  bool open_ = false;
};

/// Deterministic scorer: score = multiplier * first cell. Optionally gated.
class FakeScorer : public core::RowScorer {
 public:
  FakeScorer(double multiplier, Gate* gate)
      : multiplier_(multiplier), gate_(gate) {}

  Result<std::vector<double>> Score(
      const data::RawTable& table) const override {
    if (gate_ != nullptr) gate_->BlockHere();
    std::vector<double> out;
    out.reserve(table.rows.size());
    for (const auto& row : table.rows) {
      double v = 0.0;
      if (row.empty() || !ParseDouble(row[0], &v)) {
        return Status::InvalidArgument("fake scorer: bad cell");
      }
      out.push_back(multiplier_ * v);
    }
    return out;
  }

  const std::vector<std::string>& feature_columns() const override {
    static const std::vector<std::string> kColumns = {"x", "y"};
    return kColumns;
  }

  const std::string& label_column() const override {
    static const std::string kLabel = "label";
    return kLabel;
  }

 private:
  const double multiplier_;
  Gate* const gate_;
};

/// One running server on an ephemeral loopback port: "default" doubles the
/// first cell, "triple" triples it, any other model is unknown.
class TestServer {
 public:
  explicit TestServer(TcpServerOptions net_options = {},
                      serve::BatchScorerOptions scorer_options = {},
                      Gate* gate = nullptr)
      : default_model_(std::make_shared<FakeScorer>(2.0, gate)),
        triple_model_(std::make_shared<FakeScorer>(3.0, nullptr)),
        scorer_(
            serve::BatchScorer::NamedSnapshotProvider(
                [this](const std::string& name)
                    -> std::shared_ptr<const core::RowScorer> {
                  if (name == serve::BatchScorer::kDefaultModel) {
                    return default_model_;
                  }
                  if (name == "triple") return triple_model_;
                  return nullptr;
                }),
            scorer_options),
        server_(&scorer_, &metrics_, net_options) {
    TARGAD_CHECK_OK(server_.Start());
  }

  TcpServer& server() { return server_; }
  NetMetrics& metrics() { return metrics_; }
  uint16_t port() const { return server_.port(); }

  LineClient Connect() {
    LineClient client;
    TARGAD_CHECK_OK(client.Connect("127.0.0.1", port()));
    return client;
  }

 private:
  std::shared_ptr<FakeScorer> default_model_;
  std::shared_ptr<FakeScorer> triple_model_;
  NetMetrics metrics_;
  serve::BatchScorer scorer_;
  TcpServer server_;  // last: drains before the scorer dies
};

std::string OkScore(double v) {
  return "OK " + FormatDouble(v, 6);
}

TEST(TcpServerTest, PingStatsScoreQuit) {
  TestServer fixture;
  LineClient client = fixture.Connect();

  ASSERT_TRUE(client.SendLine("PING").ok());
  EXPECT_EQ(client.RecvLine().ValueOrDie(), "PONG");

  ASSERT_TRUE(client.SendLine("SCORE default 4.5,0").ok());
  EXPECT_EQ(client.RecvLine().ValueOrDie(), OkScore(9.0));

  ASSERT_TRUE(client.SendLine("SCORE triple 4.5,0").ok());
  EXPECT_EQ(client.RecvLine().ValueOrDie(), OkScore(13.5));

  // The model= routing cell (shared with the stdio dialect) wins over the
  // SCORE token.
  ASSERT_TRUE(client.SendLine("SCORE default model=triple,2,0").ok());
  EXPECT_EQ(client.RecvLine().ValueOrDie(), OkScore(6.0));

  ASSERT_TRUE(client.SendLine("STATS").ok());
  const std::string stats = client.RecvLine().ValueOrDie();
  EXPECT_EQ(stats.rfind("OK accepted=1 ", 0), 0u) << stats;
  EXPECT_NE(stats.find(" draining=0"), std::string::npos) << stats;

  ASSERT_TRUE(client.SendLine("QUIT").ok());
  EXPECT_EQ(client.RecvLine().ValueOrDie(), "OK bye");
  // Server closes after flushing the QUIT reply.
  EXPECT_FALSE(client.RecvLine().ok());
}

TEST(TcpServerTest, PartialFramesAcrossWriteBoundaries) {
  TestServer fixture;
  LineClient client = fixture.Connect();
  // One logical stream, delivered in awkward pieces: a request split
  // mid-token, a second request sharing a segment with the first's tail.
  ASSERT_TRUE(client.SendRaw("SCO").ok());
  ASSERT_TRUE(client.SendRaw("RE default 1.").ok());
  ASSERT_TRUE(client.SendRaw("5,0\nPI").ok());
  ASSERT_TRUE(client.SendRaw("NG\n").ok());
  EXPECT_EQ(client.RecvLine().ValueOrDie(), OkScore(3.0));
  EXPECT_EQ(client.RecvLine().ValueOrDie(), "PONG");
}

TEST(TcpServerTest, MalformedLinesGetErrAndConnectionSurvives) {
  TestServer fixture;
  LineClient client = fixture.Connect();
  ASSERT_TRUE(client.SendLine("FROB 1,2").ok());
  std::string reply = client.RecvLine().ValueOrDie();
  EXPECT_EQ(reply.rfind("ERR bad-request ", 0), 0u) << reply;
  ASSERT_TRUE(client.SendLine("SCORE").ok());
  reply = client.RecvLine().ValueOrDie();
  EXPECT_EQ(reply.rfind("ERR bad-request ", 0), 0u) << reply;
  // Still alive.
  ASSERT_TRUE(client.SendLine("PING").ok());
  EXPECT_EQ(client.RecvLine().ValueOrDie(), "PONG");
  EXPECT_EQ(fixture.metrics().Snapshot().protocol_errors, 2u);
}

TEST(TcpServerTest, UnknownModelFailsOnlyThatRow) {
  TestServer fixture;
  LineClient client = fixture.Connect();
  ASSERT_TRUE(client.SendLine("SCORE nosuch 1,0").ok());
  const std::string reply = client.RecvLine().ValueOrDie();
  EXPECT_EQ(reply.rfind("ERR not-found ", 0), 0u) << reply;
  ASSERT_TRUE(client.SendLine("SCORE default 1,0").ok());
  EXPECT_EQ(client.RecvLine().ValueOrDie(), OkScore(2.0));
}

TEST(TcpServerTest, OversizedLineRepliesTooLongAndCloses) {
  TcpServerOptions options;
  options.max_line_bytes = 32;
  TestServer fixture(options);
  LineClient client = fixture.Connect();
  ASSERT_TRUE(client.SendRaw(std::string(64, 'x')).ok());
  const std::string reply = client.RecvLine().ValueOrDie();
  EXPECT_EQ(reply.rfind("ERR too-long ", 0), 0u) << reply;
  EXPECT_FALSE(client.RecvLine().ok());  // connection closed
  EXPECT_EQ(fixture.metrics().Snapshot().oversized_lines, 1u);
}

TEST(TcpServerTest, AdmissionExhaustionShedsWithErrOverloadedInOrder) {
  // One worker blocked inside Score + a one-row queue: the third SCORE hits
  // bounded admission and must come back "ERR overloaded" — after the two
  // admitted replies, because write-back is ordered per connection.
  Gate gate;
  serve::BatchScorerOptions scorer_options;
  scorer_options.num_workers = 1;
  scorer_options.max_batch_size = 1;
  scorer_options.max_queue_rows = 1;
  TestServer fixture({}, scorer_options, &gate);
  LineClient client = fixture.Connect();

  ASSERT_TRUE(client.SendLine("SCORE default 1,0").ok());
  gate.WaitUntilEntered();  // row 1 is now inside Score, not in the queue
  ASSERT_TRUE(client.SendLine("SCORE default 2,0").ok());
  // Wait until row 2 occupies the one queue slot.
  while (fixture.server().inflight_rows() < 2) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(client.SendLine("SCORE default 3,0").ok());
  // Row 3's rejection resolves immediately, but its reply may only be
  // flushed after rows 1 and 2 — which are still gated. Release them.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gate.Open();

  EXPECT_EQ(client.RecvLine().ValueOrDie(), OkScore(2.0));
  EXPECT_EQ(client.RecvLine().ValueOrDie(), OkScore(4.0));
  const std::string reply = client.RecvLine().ValueOrDie();
  EXPECT_EQ(reply.rfind("ERR overloaded ", 0), 0u) << reply;
  EXPECT_EQ(fixture.metrics().Snapshot().shed, 1u);
}

TEST(TcpServerTest, ConnectionLimitRejectsWithErrOverloaded) {
  TcpServerOptions options;
  options.max_connections = 1;
  TestServer fixture(options);
  LineClient first = fixture.Connect();
  ASSERT_TRUE(first.SendLine("PING").ok());
  EXPECT_EQ(first.RecvLine().ValueOrDie(), "PONG");

  LineClient second = fixture.Connect();
  const std::string reply = second.RecvLine().ValueOrDie();
  EXPECT_EQ(reply.rfind("ERR overloaded ", 0), 0u) << reply;
  EXPECT_FALSE(second.RecvLine().ok());
  EXPECT_EQ(fixture.metrics().Snapshot().connections_rejected, 1u);

  // The first connection is unaffected.
  ASSERT_TRUE(first.SendLine("PING").ok());
  EXPECT_EQ(first.RecvLine().ValueOrDie(), "PONG");
}

TEST(TcpServerTest, IdleTimeoutClosesQuietConnections) {
  TcpServerOptions options;
  options.idle_timeout_ms = 80;
  TestServer fixture(options);
  LineClient client = fixture.Connect();
  ASSERT_TRUE(client.SendLine("PING").ok());
  EXPECT_EQ(client.RecvLine().ValueOrDie(), "PONG");
  // No further traffic: the server must close the connection on its own.
  EXPECT_FALSE(client.RecvLine(2000).ok());
  // The counter is recorded before the close() the client just observed,
  // but give a scheduling-starved poll thread a moment regardless.
  for (int i = 0; i < 100 && fixture.metrics().Snapshot().idle_closed == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(fixture.metrics().Snapshot().idle_closed, 1u);
}

TEST(TcpServerTest, DrainWhileRowsInFlightFlushesEverything) {
  Gate gate;
  serve::BatchScorerOptions scorer_options;
  scorer_options.num_workers = 1;
  scorer_options.max_batch_size = 1;
  TestServer fixture({}, scorer_options, &gate);
  LineClient client = fixture.Connect();

  ASSERT_TRUE(client.SendLine("SCORE default 5,0").ok());
  ASSERT_TRUE(client.SendLine("SCORE default 6,0").ok());
  gate.WaitUntilEntered();
  // Draining stops reads, so wait until the poll thread has ingested BOTH
  // rows (row 2 may still be in the kernel buffer when row 1 hits Score);
  // a drain that starts earlier would legitimately drop the unread row.
  while (fixture.server().inflight_rows() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Drain starts with one row blocked inside Score and one queued. Both
  // replies must still be delivered before the connection closes.
  fixture.server().BeginDrain();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.Open();

  EXPECT_EQ(client.RecvLine().ValueOrDie(), OkScore(10.0));
  EXPECT_EQ(client.RecvLine().ValueOrDie(), OkScore(12.0));
  EXPECT_FALSE(client.RecvLine().ok());  // drained connection closes

  fixture.server().Wait();
  EXPECT_EQ(fixture.server().inflight_rows(), 0u);
  const NetMetricsSnapshot snapshot = fixture.metrics().Snapshot();
  EXPECT_EQ(snapshot.drains, 1u);
  EXPECT_EQ(snapshot.rows_in, 2u);
  EXPECT_EQ(snapshot.shed, 0u);
}

TEST(TcpServerTest, ManyRowsKeepPerConnectionOrder) {
  serve::BatchScorerOptions scorer_options;
  scorer_options.num_workers = 4;
  scorer_options.max_batch_size = 4;
  TestServer fixture({}, scorer_options);
  LineClient client = fixture.Connect();
  constexpr int kRows = 200;
  for (int i = 0; i < kRows; ++i) {
    const char* model = (i % 3 == 0) ? "triple" : "default";
    ASSERT_TRUE(client
                    .SendLine("SCORE " + std::string(model) + " " +
                              std::to_string(i) + ",0")
                    .ok());
  }
  for (int i = 0; i < kRows; ++i) {
    const double expected = (i % 3 == 0) ? 3.0 * i : 2.0 * i;
    ASSERT_EQ(client.RecvLine().ValueOrDie(), OkScore(expected))
        << "row " << i;
  }
}

TEST(TcpServerTest, PipelineBurstBeyondInflightCapAnswersEveryRequest) {
  // Regression: the whole burst lands in the server's decoder at once and
  // the client then only reads. Lines beyond max_inflight_rows are parked
  // with no further readable event coming, so only the loop's parse
  // re-entry pass can dispatch them once completions reopen the gate. The
  // tight idle timeout guards the old failure mode, where the parked
  // session looked settled and was idle-closed with requests still queued.
  TcpServerOptions options;
  options.max_inflight_rows = 4;
  options.idle_timeout_ms = 200;
  serve::BatchScorerOptions scorer_options;
  scorer_options.num_workers = 2;
  scorer_options.max_batch_size = 2;
  TestServer fixture(options, scorer_options);
  LineClient client = fixture.Connect();

  constexpr int kRows = 64;
  std::string burst;
  for (int i = 0; i < kRows; ++i) {
    burst += "SCORE default " + std::to_string(i) + ",0\n";
  }
  burst += "QUIT\n";  // also parked beyond the cap; must still be reached
  ASSERT_TRUE(client.SendRaw(burst).ok());
  for (int i = 0; i < kRows; ++i) {
    ASSERT_EQ(client.RecvLine().ValueOrDie(), OkScore(2.0 * i))
        << "row " << i;
  }
  EXPECT_EQ(client.RecvLine().ValueOrDie(), "OK bye");
  EXPECT_FALSE(client.RecvLine().ok());  // server closes after QUIT
  EXPECT_EQ(fixture.metrics().Snapshot().rows_in,
            static_cast<uint64_t>(kRows));
}

}  // namespace
}  // namespace net
}  // namespace targad
