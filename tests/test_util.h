// Shared helpers for the test suite: tiny synthetic worlds and bundles that
// keep model-training tests fast.

#ifndef TARGAD_TESTS_TEST_UTIL_H_
#define TARGAD_TESTS_TEST_UTIL_H_

#include <cstdint>

#include "data/profiles.h"
#include "data/splits.h"
#include "data/synthetic.h"

namespace targad {
namespace testing {

/// A small, well-separated synthetic world: 24 ambient dims, 2 normal
/// groups, 2 target classes, 2 non-target classes.
inline data::SyntheticWorldConfig TinyWorldConfig(uint64_t seed = 42) {
  data::SyntheticWorldConfig world;
  world.latent_dim = 6;
  world.ambient_dim = 32;
  world.informative_fraction = 0.9;
  world.num_normal_groups = 2;
  world.num_target_classes = 2;
  world.num_nontarget_classes = 2;
  world.target_separation = 5.5;
  world.nontarget_separation = 8.5;
  world.variants_per_class = 3;
  world.variant_scatter = 1.3;
  world.target_spread = 0.7;
  world.nontarget_spread = 0.7;
    world.feature_noise = 0.02;
  world.seed = seed;
  return world;
}

/// A small DatasetBundle (~800 unlabeled, ~300-instance eval splits) for
/// integration tests. Builds the tiny world and assembles the splits.
inline data::DatasetBundle TinyBundle(uint64_t seed = 42,
                                      double contamination = 0.05) {
  data::SyntheticWorldConfig world_config = TinyWorldConfig(seed);
  data::SyntheticWorld world =
      data::SyntheticWorld::Make(world_config).ValueOrDie();
  Rng rng(seed ^ 0x7E577E57ULL);
  data::LabeledPool pool =
      world.GeneratePool(/*n_normal=*/1400, /*per_target_class=*/120,
                         /*per_nontarget_class=*/120, &rng);
  data::AssemblyConfig assembly;
  assembly.num_target_classes = 2;
  assembly.labeled_per_class = 30;
  assembly.unlabeled_size = 800;
  assembly.contamination = contamination;
  assembly.target_share_of_contamination = 0.4;
  assembly.val_normal = 200;
  assembly.val_target = 40;
  assembly.val_nontarget = 50;
  assembly.test_normal = 300;
  assembly.test_target = 60;
  assembly.test_nontarget = 80;
  assembly.seed = seed;
  data::DatasetBundle bundle =
      data::AssembleBundle(pool, assembly).ValueOrDie();
  bundle.name = "tiny";
  return bundle;
}

}  // namespace testing
}  // namespace targad

#endif  // TARGAD_TESTS_TEST_UTIL_H_
