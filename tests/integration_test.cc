// End-to-end integration tests across the whole stack: dataset profiles ->
// TargAD -> evaluation, plus the robustness scenarios of Fig. 4.

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "core/targad.h"
#include "data/profiles.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace targad {
namespace {

core::TargADConfig FastTargAd(uint64_t seed) {
  core::TargADConfig config;
  config.seed = seed;
  // Paper-default hyperparameters with elbow-selected k over a small range.
  config.selection.k = 0;
  config.selection.elbow_k_min = 2;
  config.selection.elbow_k_max = 5;
  return config;
}

TEST(IntegrationTest, TargAdBeatsIForestOnKddLikeProfile) {
  auto bundle = data::MakeBundle(data::KddLikeProfile(0.03), 1).ValueOrDie();
  const auto labels = bundle.test.BinaryTargetLabels();

  auto model = core::TargAD::Make(FastTargAd(1)).ValueOrDie();
  TARGAD_CHECK_OK(model.Fit(bundle.train));
  const double targad_auprc =
      eval::Auprc(model.Score(bundle.test.x), labels).ValueOrDie();

  auto iforest = baselines::MakeDetector("iForest", 1).ValueOrDie();
  TARGAD_CHECK_OK(iforest->Fit(bundle.train));
  const double iforest_auprc =
      eval::Auprc(iforest->Score(bundle.test.x), labels).ValueOrDie();

  EXPECT_GT(targad_auprc, iforest_auprc);
  EXPECT_GT(targad_auprc, 0.5);
}

TEST(IntegrationTest, RobustToUnseenNonTargetTypes) {
  // Fig. 4(a): hold non-target classes out of training; they appear only
  // at test time. TargAD must keep detecting target anomalies.
  data::DatasetProfile profile = data::UnswLikeProfile(0.03);
  profile.assembly.train_nontarget_classes = {0};  // 3 of 4 classes unseen.
  auto bundle = data::MakeBundle(profile, 2).ValueOrDie();

  auto model = core::TargAD::Make(FastTargAd(2)).ValueOrDie();
  TARGAD_CHECK_OK(model.Fit(bundle.train));
  const auto labels = bundle.test.BinaryTargetLabels();
  const double auprc =
      eval::Auprc(model.Score(bundle.test.x), labels).ValueOrDie();
  EXPECT_GT(auprc, 0.45);
}

TEST(IntegrationTest, HandlesSingleTargetClass) {
  // Fig. 4(b) endpoint: m = 1.
  data::SyntheticWorldConfig world = targad::testing::TinyWorldConfig(33);
  world.num_target_classes = 1;
  world.num_nontarget_classes = 3;
  auto w = data::SyntheticWorld::Make(world).ValueOrDie();
  Rng rng(33);
  data::LabeledPool pool = w.GeneratePool(1200, 250, 100, &rng);
  data::AssemblyConfig assembly;
  assembly.num_target_classes = 1;
  assembly.labeled_per_class = 40;
  assembly.unlabeled_size = 700;
  assembly.contamination = 0.05;
  assembly.val_normal = 150;
  assembly.val_target = 30;
  assembly.val_nontarget = 40;
  assembly.test_normal = 250;
  assembly.test_target = 50;
  assembly.test_nontarget = 60;
  assembly.seed = 33;
  auto bundle = data::AssembleBundle(pool, assembly).ValueOrDie();

  auto model = core::TargAD::Make(FastTargAd(3)).ValueOrDie();
  TARGAD_CHECK_OK(model.Fit(bundle.train));
  const auto labels = bundle.test.BinaryTargetLabels();
  EXPECT_GT(eval::Auprc(model.Score(bundle.test.x), labels).ValueOrDie(), 0.5);
}

TEST(IntegrationTest, SurvivesHighContamination) {
  // Fig. 4(d) upper end: 9% contamination.
  data::DatasetBundle bundle = targad::testing::TinyBundle(34, 0.09);
  auto model = core::TargAD::Make(FastTargAd(4)).ValueOrDie();
  TARGAD_CHECK_OK(model.Fit(bundle.train));
  const auto labels = bundle.test.BinaryTargetLabels();
  EXPECT_GT(eval::Auprc(model.Score(bundle.test.x), labels).ValueOrDie(), 0.4);
}

TEST(IntegrationTest, AlphaAboveContaminationDegradesGracefully) {
  // Fig. 6's diagonal structure: alpha far above the true contamination
  // pollutes D_U^A with real normals but must not break training.
  data::DatasetBundle bundle = targad::testing::TinyBundle(35, 0.03);
  core::TargADConfig config = FastTargAd(5);
  config.selection.alpha = 0.20;
  auto model = core::TargAD::Make(config).ValueOrDie();
  TARGAD_CHECK_OK(model.Fit(bundle.train));
  const auto labels = bundle.test.BinaryTargetLabels();
  EXPECT_GT(eval::Auroc(model.Score(bundle.test.x), labels).ValueOrDie(), 0.7);
}

TEST(IntegrationTest, ValidationAndTestDimensionsAgreeAcrossProfiles) {
  for (const auto& profile : data::AllProfiles(0.03)) {
    auto bundle = data::MakeBundle(profile, 0).ValueOrDie();
    EXPECT_EQ(bundle.validation.x.cols(), bundle.dim());
    EXPECT_EQ(bundle.test.x.cols(), bundle.dim());
    EXPECT_TRUE(bundle.Validate().ok());
  }
}

}  // namespace
}  // namespace targad
