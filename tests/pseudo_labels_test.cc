#include "core/pseudo_labels.h"

#include <gtest/gtest.h>

namespace targad {
namespace core {
namespace {

TEST(PseudoLabelTest, TargetIsOneHotInFirstM) {
  const auto row = TargetPseudoLabel(/*cls=*/1, /*m=*/3, /*k=*/2);
  EXPECT_EQ(row, (std::vector<double>{0, 1, 0, 0, 0}));
}

TEST(PseudoLabelTest, NormalIsOneHotInLastK) {
  const auto row = NormalPseudoLabel(/*cluster=*/1, /*m=*/3, /*k=*/2);
  EXPECT_EQ(row, (std::vector<double>{0, 0, 0, 0, 1}));
}

TEST(PseudoLabelTest, NonTargetIsUniformOverFirstMOnly) {
  const auto row = NonTargetPseudoLabel(/*m=*/4, /*k=*/3);
  ASSERT_EQ(row.size(), 7u);
  for (int j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(row[static_cast<size_t>(j)], 0.25);
  for (int j = 4; j < 7; ++j) EXPECT_DOUBLE_EQ(row[static_cast<size_t>(j)], 0.0);
}

TEST(PseudoLabelTest, AllLabelsSumToOne) {
  for (int m = 1; m <= 4; ++m) {
    for (int k = 1; k <= 4; ++k) {
      auto check = [](const std::vector<double>& row) {
        double sum = 0.0;
        for (double v : row) sum += v;
        EXPECT_NEAR(sum, 1.0, 1e-12);
      };
      check(TargetPseudoLabel(m - 1, m, k));
      check(NormalPseudoLabel(k - 1, m, k));
      check(NonTargetPseudoLabel(m, k));
    }
  }
}

TEST(PseudoLabelTest, BatchRowsStackCorrectly) {
  const nn::Matrix targets = TargetPseudoLabelRows({0, 2}, 3, 2);
  ASSERT_EQ(targets.rows(), 2u);
  EXPECT_DOUBLE_EQ(targets.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(targets.At(1, 2), 1.0);

  const nn::Matrix normals = NormalPseudoLabelRows({1, 0}, 3, 2);
  EXPECT_DOUBLE_EQ(normals.At(0, 4), 1.0);
  EXPECT_DOUBLE_EQ(normals.At(1, 3), 1.0);

  const nn::Matrix nontargets = NonTargetPseudoLabelRows(3, 2, 2);
  ASSERT_EQ(nontargets.rows(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(nontargets.At(i, 0), 0.5);
    EXPECT_DOUBLE_EQ(nontargets.At(i, 3), 0.0);
  }
}

TEST(PseudoLabelDeathTest, OutOfRangeClassAborts) {
  EXPECT_DEATH({ (void)TargetPseudoLabel(3, 3, 2); }, "target class");
  EXPECT_DEATH({ (void)TargetPseudoLabel(-1, 3, 2); }, "target class");
  EXPECT_DEATH({ (void)NormalPseudoLabel(2, 3, 2); }, "normal cluster");
  EXPECT_DEATH({ (void)NonTargetPseudoLabel(0, 2); }, "m > 0");
}

}  // namespace
}  // namespace core
}  // namespace targad
