// serve/row_parse.cc edge cases: the CSV record splitting and schema
// matching shared by the stdio stream driver and the TCP parse stage. The
// happy paths ride along in the integration and protocol tests; this file
// pins the corners both front-ends must agree on byte-for-byte.

#include "serve/row_parse.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace targad {
namespace serve {
namespace {

/// Minimal schema stub: feature columns f0..f{n-1}, label column "label".
class FakeScorer : public core::RowScorer {
 public:
  explicit FakeScorer(int n) {
    for (int j = 0; j < n; ++j) features_.push_back("f" + std::to_string(j));
  }

  Result<std::vector<double>> Score(const data::RawTable& table) const override {
    return std::vector<double>(table.rows.size(), 0.0);
  }
  const std::vector<std::string>& feature_columns() const override {
    return features_;
  }
  const std::string& label_column() const override { return label_; }

 private:
  std::vector<std::string> features_;
  std::string label_ = "label";
};

TEST(SplitDataRecord, PlainAndRouted) {
  DataRecord plain = SplitDataRecord("1,2,3", -1);
  EXPECT_FALSE(plain.routed);
  EXPECT_EQ(plain.model, "");
  EXPECT_EQ(plain.cells, (std::vector<std::string>{"1", "2", "3"}));

  DataRecord routed = SplitDataRecord("model=alt,1,2", -1);
  EXPECT_TRUE(routed.routed);
  EXPECT_EQ(routed.model, "alt");
  EXPECT_EQ(routed.cells, (std::vector<std::string>{"1", "2"}));
}

TEST(SplitDataRecord, LabelColumnDropped) {
  DataRecord rec = SplitDataRecord("a,b,c", 1);
  EXPECT_EQ(rec.cells, (std::vector<std::string>{"a", "c"}));

  // label_col indexes the header (routing cell not counted): with a routing
  // cell present, label 0 drops the first DATA cell, not the routing cell.
  DataRecord routed = SplitDataRecord("model=m,a,b", 0);
  EXPECT_TRUE(routed.routed);
  EXPECT_EQ(routed.cells, (std::vector<std::string>{"b"}));
}

// SplitDataRecord's contract is "no trailing newline": both front-ends
// strip line terminators before calling (FrameDecoder::ReadLine eats the
// \r of a CRLF, the stream driver's getline path likewise). A \r that DOES
// reach the splitter is payload — it must land in the last cell verbatim,
// not be silently dropped, or the two paths could disagree about what they
// scored.
TEST(SplitDataRecord, CarriageReturnIsPayloadNotTerminator) {
  DataRecord rec = SplitDataRecord("1,2\r", -1);
  ASSERT_EQ(rec.cells.size(), 2u);
  EXPECT_EQ(rec.cells[1], "2\r");
}

TEST(SplitDataRecord, EmptyTrailingCellIsPreserved) {
  DataRecord rec = SplitDataRecord("1,2,", -1);
  EXPECT_EQ(rec.cells, (std::vector<std::string>{"1", "2", ""}));

  // A lone empty line is one empty cell, not zero cells.
  DataRecord empty = SplitDataRecord("", -1);
  EXPECT_EQ(empty.cells, (std::vector<std::string>{""}));
}

// "model=" with an empty name still routes — to the empty model name, which
// the registry will refuse to resolve. It must NOT fall through to being
// scored as a data cell by the default model.
TEST(SplitDataRecord, ModelTokenWithEmptyName) {
  DataRecord rec = SplitDataRecord("model=,1,2", -1);
  EXPECT_TRUE(rec.routed);
  EXPECT_EQ(rec.model, "");
  EXPECT_EQ(rec.cells, (std::vector<std::string>{"1", "2"}));
}

// Oversized records parse losslessly: every cell survives the split (the
// schema check downstream is what rejects the width, and it can only report
// the right count if nothing was truncated here). A label_col beyond the
// record's width drops nothing.
TEST(SplitDataRecord, OversizedCellCountSurvivesSplit) {
  std::string line = "0";
  for (int j = 1; j < 256; ++j) line += "," + std::to_string(j);
  DataRecord rec = SplitDataRecord(line, -1);
  EXPECT_EQ(rec.cells.size(), 256u);
  EXPECT_EQ(rec.cells.back(), "255");

  DataRecord wide_label = SplitDataRecord("a,b", 5);
  EXPECT_EQ(wide_label.cells, (std::vector<std::string>{"a", "b"}));
}

TEST(MatchSchemaHeader, LabelAnywhereAndWidthMismatch) {
  FakeScorer schema(2);

  Result<int> no_label = MatchSchemaHeader({"f0", "f1"}, schema);
  ASSERT_TRUE(no_label.ok());
  EXPECT_EQ(no_label.ValueOrDie(), -1);

  Result<int> label_mid = MatchSchemaHeader({"f0", "label", "f1"}, schema);
  ASSERT_TRUE(label_mid.ok());
  EXPECT_EQ(label_mid.ValueOrDie(), 1);

  // Extra or missing feature columns are a schema error, not a crash.
  EXPECT_FALSE(MatchSchemaHeader({"f0", "f1", "f2"}, schema).ok());
  EXPECT_FALSE(MatchSchemaHeader({"f0"}, schema).ok());
  EXPECT_FALSE(MatchSchemaHeader({}, schema).ok());
}

}  // namespace
}  // namespace serve
}  // namespace targad
