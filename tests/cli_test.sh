#!/usr/bin/env bash
# End-to-end exercise of the targad CLI: generate -> train -> score ->
# evaluate, plus failure-path checks. Usage: cli_test.sh <path-to-targad>.
set -u

CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

fail() { echo "FAIL: $1"; exit 1; }

# Happy path.
"$CLI" generate --profile kdd --scale 0.03 --seed 3 --out data \
  || fail "generate"
[ -f data_train.csv ] || fail "train csv missing"
[ -f data_test.csv ] || fail "test csv missing"

"$CLI" train --train data_train.csv --model m.model --epochs 30 --seed 3 \
  || fail "train"
[ -s m.model ] || fail "model file empty"

"$CLI" score --model m.model --in data_test.csv --out scores.csv \
  || fail "score"
rows=$(($(wc -l < scores.csv) - 1))
expected=$(($(wc -l < data_test.csv) - 1))
[ "$rows" -eq "$expected" ] || fail "score row count $rows != $expected"

out=$("$CLI" evaluate --scores scores.csv --truth data_test.csv) \
  || fail "evaluate"
echo "$out"
case "$out" in
  AUPRC=*AUROC=*) ;;
  *) fail "unexpected evaluate output" ;;
esac

# Failure paths must exit non-zero with a clean message.
"$CLI" bogus-subcommand >/dev/null 2>&1 && fail "bogus subcommand accepted"
"$CLI" train --train missing.csv --model x >/dev/null 2>&1 \
  && fail "missing csv accepted"
"$CLI" score --model missing.model --in data_test.csv --out s.csv \
  >/dev/null 2>&1 && fail "missing model accepted"
"$CLI" generate --profile nonsense >/dev/null 2>&1 \
  && fail "bad profile accepted"

echo "cli_test PASSED"
exit 0
