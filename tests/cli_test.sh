#!/usr/bin/env bash
# End-to-end exercise of the targad CLI: generate -> train -> score ->
# evaluate, plus failure-path checks. Usage: cli_test.sh <path-to-targad>.
set -u

CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

fail() { echo "FAIL: $1"; exit 1; }

# Happy path.
"$CLI" generate --profile kdd --scale 0.03 --seed 3 --out data \
  || fail "generate"
[ -f data_train.csv ] || fail "train csv missing"
[ -f data_test.csv ] || fail "test csv missing"

"$CLI" train --train data_train.csv --model m.model --epochs 30 --seed 3 \
  || fail "train"
[ -s m.model ] || fail "model file empty"

"$CLI" score --model m.model --in data_test.csv --out scores.csv \
  || fail "score"
rows=$(($(wc -l < scores.csv) - 1))
expected=$(($(wc -l < data_test.csv) - 1))
[ "$rows" -eq "$expected" ] || fail "score row count $rows != $expected"

out=$("$CLI" evaluate --scores scores.csv --truth data_test.csv) \
  || fail "evaluate"
echo "$out"
case "$out" in
  AUPRC=*AUROC=*) ;;
  *) fail "unexpected evaluate output" ;;
esac

# Serving path: micro-batched concurrent scoring must be bit-identical to
# the serial score output above.
"$CLI" serve --model m.model --in data_test.csv --out serve_scores.csv \
  --workers 4 --batch 16 2>serve_metrics.txt || fail "serve"
diff -q scores.csv serve_scores.csv \
  || fail "serve scores differ from serial score output"
grep -q "requests:" serve_metrics.txt || fail "serve metrics report missing"

# Serving from stdin to stdout.
"$CLI" serve --model m.model < data_test.csv > serve_stdout.csv \
  2>/dev/null || fail "serve stdin"
diff -q scores.csv serve_stdout.csv || fail "serve stdin scores differ"

# --dtype float64 (explicit) serves the full-precision pipeline: still
# bit-identical to the serial score output.
"$CLI" serve --model m.model --dtype float64 --in data_test.csv \
  --out serve_f64.csv 2>/dev/null || fail "serve --dtype float64"
diff -q scores.csv serve_f64.csv || fail "float64 serve scores differ"

# --dtype float32 serves the frozen plan: scores must round-trip within the
# calibration tolerance of the float64 output (1e-4 on [0,1] scores).
"$CLI" serve --model m.model --dtype float32 --in data_test.csv \
  --out serve_f32.csv 2>serve_f32_metrics.txt || fail "serve --dtype float32"
rows32=$(($(wc -l < serve_f32.csv) - 1))
[ "$rows32" -eq "$expected" ] || fail "float32 serve row count"
paste -d, <(tail -n +2 scores.csv) <(tail -n +2 serve_f32.csv) \
  | awk -F, 'BEGIN{bad=0} {d=$1-$2; if (d<0) d=-d; if (d>1e-4) bad++}
             END{exit bad}' \
  || fail "float32 serve scores drift past 1e-4"
grep -q "dtype float32" serve_f32_metrics.txt \
  || fail "serve metrics missing dtype"

# An unknown dtype is rejected up front.
"$CLI" serve --model m.model --dtype float16 --in data_test.csv \
  --out /dev/null >/dev/null 2>&1 && fail "bad dtype accepted"

# --refresh-ms: a background timer re-polls artifact mtimes and hot-swaps
# changed files while the stream is live. Bumping the model's mtime
# mid-stream must be picked up (>= 1 republish), and the scores — same
# artifact contents — must stay bit-identical to the serial output.
{
  head -1 data_test.csv
  tail -n +2 data_test.csv | head -10
  sleep 0.3
  touch m.model
  sleep 0.3
  tail -n +12 data_test.csv
} | "$CLI" serve --model m.model --refresh-ms 20 \
  > refresh_scores.csv 2>refresh_metrics.txt || fail "serve --refresh-ms"
diff -q scores.csv refresh_scores.csv || fail "refresh serve scores differ"
grep -q "refreshes:" refresh_metrics.txt \
  || fail "refresh metrics line missing"
awk '/refreshes:/ {polls=$2; repub=$4;
     exit !(polls >= 1 && repub >= 1)}' refresh_metrics.txt \
  || fail "refresh timer never republished the touched artifact"

# A non-positive refresh interval is rejected up front.
"$CLI" serve --model m.model --refresh-ms 0 --in data_test.csv \
  --out /dev/null >/dev/null 2>&1 && fail "refresh-ms 0 accepted"
"$CLI" serve --model m.model --refresh-ms -5 --in data_test.csv \
  --out /dev/null >/dev/null 2>&1 && fail "negative refresh-ms accepted"

# Multi-model routing: register the artifact under two names via --models
# and route every row to the second name with a leading model= cell.
mkdir models_dir
cp m.model models_dir/default.targad
cp m.model models_dir/shadow.targad
awk -F, 'NR==1 {print; next} {print "model=shadow," $0}' data_test.csv \
  > routed_test.csv
"$CLI" serve --models models_dir --in routed_test.csv --out serve_routed.csv \
  2>routed_metrics.txt || fail "serve model routing"
diff -q scores.csv serve_routed.csv || fail "routed scores differ"
grep -q "model shadow:" routed_metrics.txt \
  || fail "per-model metrics missing routed model"

# A row routed to an unknown model fails alone; the stream aborts on it
# (keep_going is off in the CLI), exiting non-zero.
printf 'model=missing-model,' > bad_route.csv
head -2 data_test.csv | tail -1 >> bad_route.csv
head -1 data_test.csv | cat - bad_route.csv > bad_routed_test.csv
"$CLI" serve --models models_dir --in bad_routed_test.csv \
  --out /dev/null >/dev/null 2>&1 && fail "unknown routed model accepted"

# Unknown flags are rejected, and the error names the valid ones.
err=$("$CLI" serve --model m.model --bogus-flag 1 2>&1) \
  && fail "unknown flag accepted"
case "$err" in
  *"unknown flag --bogus-flag"*"--model"*) ;;
  *) fail "unknown-flag error unhelpful: $err" ;;
esac
"$CLI" train --train data_train.csv --model x --scale 0.5 >/dev/null 2>&1 \
  && fail "flag from wrong subcommand accepted"

# Failure paths must exit non-zero with a clean message.
"$CLI" bogus-subcommand >/dev/null 2>&1 && fail "bogus subcommand accepted"
"$CLI" train --train missing.csv --model x >/dev/null 2>&1 \
  && fail "missing csv accepted"
"$CLI" score --model missing.model --in data_test.csv --out s.csv \
  >/dev/null 2>&1 && fail "missing model accepted"
"$CLI" generate --profile nonsense >/dev/null 2>&1 \
  && fail "bad profile accepted"

echo "cli_test PASSED"
exit 0
