#!/usr/bin/env bash
# End-to-end exercise of the targad CLI: generate -> train -> score ->
# evaluate, plus failure-path checks. Usage: cli_test.sh <path-to-targad>.
set -u

CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

fail() { echo "FAIL: $1"; exit 1; }

# Happy path.
"$CLI" generate --profile kdd --scale 0.03 --seed 3 --out data \
  || fail "generate"
[ -f data_train.csv ] || fail "train csv missing"
[ -f data_test.csv ] || fail "test csv missing"

"$CLI" train --train data_train.csv --model m.model --epochs 30 --seed 3 \
  || fail "train"
[ -s m.model ] || fail "model file empty"

"$CLI" score --model m.model --in data_test.csv --out scores.csv \
  || fail "score"
rows=$(($(wc -l < scores.csv) - 1))
expected=$(($(wc -l < data_test.csv) - 1))
[ "$rows" -eq "$expected" ] || fail "score row count $rows != $expected"

out=$("$CLI" evaluate --scores scores.csv --truth data_test.csv) \
  || fail "evaluate"
echo "$out"
case "$out" in
  AUPRC=*AUROC=*) ;;
  *) fail "unexpected evaluate output" ;;
esac

# Serving path: micro-batched concurrent scoring must be bit-identical to
# the serial score output above.
"$CLI" serve --model m.model --in data_test.csv --out serve_scores.csv \
  --workers 4 --batch 16 2>serve_metrics.txt || fail "serve"
diff -q scores.csv serve_scores.csv \
  || fail "serve scores differ from serial score output"
grep -q "requests:" serve_metrics.txt || fail "serve metrics report missing"

# Serving from stdin to stdout.
"$CLI" serve --model m.model < data_test.csv > serve_stdout.csv \
  2>/dev/null || fail "serve stdin"
diff -q scores.csv serve_stdout.csv || fail "serve stdin scores differ"

# --dtype float64 (explicit) serves the full-precision pipeline: still
# bit-identical to the serial score output.
"$CLI" serve --model m.model --dtype float64 --in data_test.csv \
  --out serve_f64.csv 2>/dev/null || fail "serve --dtype float64"
diff -q scores.csv serve_f64.csv || fail "float64 serve scores differ"

# --dtype float32 serves the frozen plan: scores must round-trip within the
# calibration tolerance of the float64 output (1e-4 on [0,1] scores).
"$CLI" serve --model m.model --dtype float32 --in data_test.csv \
  --out serve_f32.csv 2>serve_f32_metrics.txt || fail "serve --dtype float32"
rows32=$(($(wc -l < serve_f32.csv) - 1))
[ "$rows32" -eq "$expected" ] || fail "float32 serve row count"
paste -d, <(tail -n +2 scores.csv) <(tail -n +2 serve_f32.csv) \
  | awk -F, 'BEGIN{bad=0} {d=$1-$2; if (d<0) d=-d; if (d>1e-4) bad++}
             END{exit bad}' \
  || fail "float32 serve scores drift past 1e-4"
grep -q "dtype float32" serve_f32_metrics.txt \
  || fail "serve metrics missing dtype"

# An unknown dtype is rejected up front.
"$CLI" serve --model m.model --dtype float16 --in data_test.csv \
  --out /dev/null >/dev/null 2>&1 && fail "bad dtype accepted"

# --refresh-ms: a background timer re-polls artifact mtimes and hot-swaps
# changed files while the stream is live. Bumping the model's mtime
# mid-stream must be picked up (>= 1 republish), and the scores — same
# artifact contents — must stay bit-identical to the serial output.
{
  head -1 data_test.csv
  tail -n +2 data_test.csv | head -10
  sleep 0.3
  touch m.model
  sleep 0.3
  tail -n +12 data_test.csv
} | "$CLI" serve --model m.model --refresh-ms 20 \
  > refresh_scores.csv 2>refresh_metrics.txt || fail "serve --refresh-ms"
diff -q scores.csv refresh_scores.csv || fail "refresh serve scores differ"
grep -q "refreshes:" refresh_metrics.txt \
  || fail "refresh metrics line missing"
awk '/refreshes:/ {polls=$2; repub=$4;
     exit !(polls >= 1 && repub >= 1)}' refresh_metrics.txt \
  || fail "refresh timer never republished the touched artifact"

# A non-positive refresh interval is rejected up front.
"$CLI" serve --model m.model --refresh-ms 0 --in data_test.csv \
  --out /dev/null >/dev/null 2>&1 && fail "refresh-ms 0 accepted"
"$CLI" serve --model m.model --refresh-ms -5 --in data_test.csv \
  --out /dev/null >/dev/null 2>&1 && fail "negative refresh-ms accepted"

# Multi-model routing: register the artifact under two names via --models
# and route every row to the second name with a leading model= cell.
mkdir models_dir
cp m.model models_dir/default.targad
cp m.model models_dir/shadow.targad
awk -F, 'NR==1 {print; next} {print "model=shadow," $0}' data_test.csv \
  > routed_test.csv
"$CLI" serve --models models_dir --in routed_test.csv --out serve_routed.csv \
  2>routed_metrics.txt || fail "serve model routing"
diff -q scores.csv serve_routed.csv || fail "routed scores differ"
grep -q "model shadow:" routed_metrics.txt \
  || fail "per-model metrics missing routed model"

# A row routed to an unknown model fails alone; the stream aborts on it
# (keep_going is off in the CLI), exiting non-zero.
printf 'model=missing-model,' > bad_route.csv
head -2 data_test.csv | tail -1 >> bad_route.csv
head -1 data_test.csv | cat - bad_route.csv > bad_routed_test.csv
"$CLI" serve --models models_dir --in bad_routed_test.csv \
  --out /dev/null >/dev/null 2>&1 && fail "unknown routed model accepted"

# Flat frozen artifacts: freeze -> inspect -> serve from the .tgz1. Both
# serves parse the same text pipeline and freeze it at float32 — one in
# process, one through the artifact — so the mapped artifact's scores must
# be bit-identical to the --dtype float32 output above.
"$CLI" freeze --model m.model --out m.tgz1 --dtype float32 || fail "freeze"
[ -s m.tgz1 ] || fail "frozen artifact empty"
inspect_out=$("$CLI" inspect --artifact m.tgz1) || fail "inspect"
echo "$inspect_out" | grep -q "targad flat artifact v1" \
  || fail "inspect missing format line"
echo "$inspect_out" | grep -q "dtype float32" || fail "inspect missing dtype"
echo "$inspect_out" | grep -q "checksum ok" || fail "inspect missing checksum"

# A truncated artifact must be rejected, not served.
head -c 200 m.tgz1 > broken.tgz1
"$CLI" inspect --artifact broken.tgz1 >/dev/null 2>&1 \
  && fail "truncated artifact accepted by inspect"

mkdir artifact_dir
cp m.tgz1 artifact_dir/default.tgz1
"$CLI" serve --models artifact_dir --in data_test.csv --out serve_tgz1.csv \
  2>tgz1_metrics.txt || fail "serve from .tgz1"
diff -q serve_f32.csv serve_tgz1.csv \
  || fail ".tgz1 serve scores differ from in-process float32 freeze"

# --warm 1 with two artifacts forces warm-tier evictions; the exit report
# must carry the registry tiering counters.
cp m.tgz1 artifact_dir/other.tgz1
"$CLI" serve --models artifact_dir --warm 1 --in data_test.csv \
  --out warm_scores.csv 2>warm_metrics.txt || fail "serve --warm"
diff -q serve_f32.csv warm_scores.csv || fail "--warm serve scores differ"
grep -q "registry:" warm_metrics.txt \
  || fail "registry metrics missing from exit report"
awk '/registry:/ {evictions=$6; loads=$8;
     exit !(evictions >= 1 && loads >= 2)}' warm_metrics.txt \
  || fail "warm-capacity serve recorded no evictions/loads"

# A non-positive warm capacity is rejected up front.
"$CLI" serve --model m.model --warm 0 --in data_test.csv \
  --out /dev/null >/dev/null 2>&1 && fail "warm 0 accepted"

# Graceful stdio drain: SIGTERM while the input pipe is still open must
# stop reading, resolve every in-flight row, write its score, and exit 0.
mkfifo drain_fifo
"$CLI" serve --model m.model < drain_fifo > drain_scores.csv \
  2>drain_metrics.txt &
SERVE_PID=$!
exec 9>drain_fifo
head -4 data_test.csv >&9   # header + 3 rows, pipe stays open
sleep 1
kill -TERM "$SERVE_PID"
drained=1
for _ in $(seq 1 100); do
  kill -0 "$SERVE_PID" 2>/dev/null || { drained=0; break; }
  sleep 0.1
done
exec 9>&-
rm -f drain_fifo
[ "$drained" -eq 0 ] || fail "stdio serve did not exit after SIGTERM"
wait "$SERVE_PID"; [ $? -eq 0 ] || fail "stdio drain exited non-zero"
drain_rows=$(($(wc -l < drain_scores.csv) - 1))
[ "$drain_rows" -eq 3 ] || fail "stdio drain lost rows: got $drain_rows of 3"
diff <(head -4 scores.csv) drain_scores.csv \
  || fail "stdio drain scores differ from serial output"
grep -q "drain: stopped early" drain_metrics.txt \
  || fail "stdio drain marker missing"

# TCP front-end smoke: ephemeral port, PING/SCORE/STATS/QUIT over
# /dev/tcp, score bit-identical to the serial path, SIGTERM drain.
"$CLI" serve --model m.model --tcp 0 2>tcp_metrics.txt &
TCP_PID=$!
port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
         tcp_metrics.txt)
  [ -n "$port" ] && break
  sleep 0.1
done
[ -n "$port" ] || fail "tcp serve never reported its port"
feature_row=$(awk 'BEGIN{FS=",";OFS=","} NR==2 {NF=NF-1; print}' \
              data_test.csv)
serial_score=$(sed -n '2p' scores.csv)
exec 8<>/dev/tcp/127.0.0.1/"$port" || fail "tcp connect"
printf 'PING\nSCORE default %s\nSTATS\nQUIT\n' "$feature_row" >&8
{ read -r pong; read -r score_reply; read -r stats_reply; read -r bye; } <&8
exec 8>&- 8<&-
[ "$pong" = "PONG" ] || fail "tcp PING reply: $pong"
[ "$score_reply" = "OK $serial_score" ] \
  || fail "tcp score '$score_reply' != 'OK $serial_score'"
case "$stats_reply" in
  "OK accepted="*rows_in=*) ;;
  *) fail "tcp STATS reply unexpected: $stats_reply" ;;
esac
# The STATS line carries the registry tiering counters (reg_loads >= 1:
# the default model was loaded at startup).
case "$stats_reply" in
  *reg_hits=*reg_misses=*reg_evictions=*reg_loads=*) ;;
  *) fail "tcp STATS missing registry counters: $stats_reply" ;;
esac
[ "$bye" = "OK bye" ] || fail "tcp QUIT reply: $bye"
kill -TERM "$TCP_PID"
tcp_down=1
for _ in $(seq 1 100); do
  kill -0 "$TCP_PID" 2>/dev/null || { tcp_down=0; break; }
  sleep 0.1
done
[ "$tcp_down" -eq 0 ] || fail "tcp serve did not drain on SIGTERM"
wait "$TCP_PID"; [ $? -eq 0 ] || fail "tcp serve exited non-zero"
grep -q "targad: drained" tcp_metrics.txt || fail "tcp drain marker missing"
grep -q "net rows: 1 in" tcp_metrics.txt || fail "tcp net metrics missing"

# --tcp excludes the stdio flags.
"$CLI" serve --model m.model --tcp 0 --in data_test.csv >/dev/null 2>&1 \
  && fail "tcp with --in accepted"

# Unknown flags are rejected, and the error names the valid ones.
err=$("$CLI" serve --model m.model --bogus-flag 1 2>&1) \
  && fail "unknown flag accepted"
case "$err" in
  *"unknown flag --bogus-flag"*"--model"*) ;;
  *) fail "unknown-flag error unhelpful: $err" ;;
esac
"$CLI" train --train data_train.csv --model x --scale 0.5 >/dev/null 2>&1 \
  && fail "flag from wrong subcommand accepted"

# Failure paths must exit non-zero with a clean message.
"$CLI" bogus-subcommand >/dev/null 2>&1 && fail "bogus subcommand accepted"
"$CLI" train --train missing.csv --model x >/dev/null 2>&1 \
  && fail "missing csv accepted"
"$CLI" score --model missing.model --in data_test.csv --out s.csv \
  >/dev/null 2>&1 && fail "missing model accepted"
"$CLI" generate --profile nonsense >/dev/null 2>&1 \
  && fail "bad profile accepted"

echo "cli_test PASSED"
exit 0
