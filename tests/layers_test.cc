#include "nn/layers.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/gradcheck.h"
#include "nn/losses.h"
#include "nn/sequential.h"

namespace targad {
namespace nn {
namespace {

Matrix RandomBatch(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.Uniform(-1.0, 1.0);
  return m;
}

TEST(LinearTest, ForwardComputesAffineMap) {
  Rng rng(1);
  Linear layer(2, 3, &rng);
  layer.weight() = Matrix(2, 3, {1, 2, 3, 4, 5, 6});
  layer.bias() = Matrix(1, 3, {0.1, 0.2, 0.3});
  Matrix x(1, 2, {1.0, 2.0});
  Matrix y = layer.Forward(x);
  EXPECT_NEAR(y.At(0, 0), 1 * 1 + 2 * 4 + 0.1, 1e-12);
  EXPECT_NEAR(y.At(0, 1), 1 * 2 + 2 * 5 + 0.2, 1e-12);
  EXPECT_NEAR(y.At(0, 2), 1 * 3 + 2 * 6 + 0.3, 1e-12);
}

TEST(LinearTest, BackwardShapes) {
  Rng rng(2);
  Linear layer(4, 2, &rng);
  Matrix x = RandomBatch(5, 4, 3);
  Matrix y = layer.Forward(x);
  Matrix grad_in = layer.Backward(Matrix(5, 2, 1.0));
  EXPECT_EQ(grad_in.rows(), 5u);
  EXPECT_EQ(grad_in.cols(), 4u);
  EXPECT_EQ(layer.Grads()[0]->rows(), 4u);
  EXPECT_EQ(layer.Grads()[0]->cols(), 2u);
}

TEST(ReLUTest, ForwardClampsNegatives) {
  ReLU relu;
  Matrix x(1, 4, {-1.0, 0.0, 0.5, 2.0});
  Matrix y = relu.Forward(x);
  EXPECT_DOUBLE_EQ(y.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(y.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(y.At(0, 2), 0.5);
  EXPECT_DOUBLE_EQ(y.At(0, 3), 2.0);
}

TEST(ReLUTest, BackwardMasksNegatives) {
  ReLU relu;
  Matrix x(1, 3, {-1.0, 1.0, 2.0});
  relu.Forward(x);
  Matrix g = relu.Backward(Matrix(1, 3, 5.0));
  EXPECT_DOUBLE_EQ(g.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(g.At(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(g.At(0, 2), 5.0);
}

TEST(LeakyReLUTest, NegativeSlopeApplied) {
  LeakyReLU leaky(0.1);
  Matrix x(1, 2, {-2.0, 3.0});
  Matrix y = leaky.Forward(x);
  EXPECT_NEAR(y.At(0, 0), -0.2, 1e-12);
  EXPECT_DOUBLE_EQ(y.At(0, 1), 3.0);
  Matrix g = leaky.Backward(Matrix(1, 2, 1.0));
  EXPECT_NEAR(g.At(0, 0), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(g.At(0, 1), 1.0);
}

TEST(SigmoidTest, KnownValuesAndRange) {
  Sigmoid sig;
  Matrix x(1, 3, {0.0, 100.0, -100.0});
  Matrix y = sig.Forward(x);
  EXPECT_NEAR(y.At(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(y.At(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(y.At(0, 2), 0.0, 1e-12);
}

TEST(TanhTest, KnownValues) {
  Tanh tanh_layer;
  Matrix x(1, 2, {0.0, 1.0});
  Matrix y = tanh_layer.Forward(x);
  EXPECT_NEAR(y.At(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(y.At(0, 1), std::tanh(1.0), 1e-12);
}

// Gradient checks: every layer type inside a small network, against an MSE
// objective, must match finite differences.
class LayerGradCheckTest : public ::testing::TestWithParam<Activation> {};

TEST_P(LayerGradCheckTest, ParamGradsMatchFiniteDifferences) {
  Rng rng(7);
  Sequential net =
      Sequential::MakeMlp({4, 6, 3}, GetParam(), Activation::kNone, &rng);
  Matrix x = RandomBatch(5, 4, 8);
  Matrix target = RandomBatch(5, 3, 9);
  auto loss_fn = [&target](const Matrix& out) { return MseLoss(out, target); };
  EXPECT_LT(MaxParamGradError(&net, x, loss_fn), 1e-5);
}

TEST_P(LayerGradCheckTest, InputGradsMatchFiniteDifferences) {
  Rng rng(11);
  Sequential net =
      Sequential::MakeMlp({3, 5, 2}, GetParam(), Activation::kNone, &rng);
  Matrix x = RandomBatch(4, 3, 12);
  Matrix target = RandomBatch(4, 2, 13);
  auto loss_fn = [&target](const Matrix& out) { return MseLoss(out, target); };
  EXPECT_LT(MaxInputGradError(&net, x, loss_fn), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Activations, LayerGradCheckTest,
                         ::testing::Values(Activation::kReLU,
                                           Activation::kLeakyReLU,
                                           Activation::kSigmoid,
                                           Activation::kTanh));

TEST(LayerGradCheckTest, SigmoidOutputLayerGradients) {
  Rng rng(21);
  Sequential net = Sequential::MakeMlp({4, 8, 4}, Activation::kReLU,
                                       Activation::kSigmoid, &rng);
  Matrix x = RandomBatch(6, 4, 22);
  Matrix target = RandomBatch(6, 4, 23);
  auto loss_fn = [&target](const Matrix& out) { return MseLoss(out, target); };
  EXPECT_LT(MaxParamGradError(&net, x, loss_fn), 1e-5);
}

TEST(LayerTest, ZeroGradsClearsAccumulation) {
  Rng rng(31);
  Linear layer(2, 2, &rng);
  Matrix x = RandomBatch(3, 2, 32);
  layer.Forward(x);
  layer.Backward(Matrix(3, 2, 1.0));
  EXPECT_GT(layer.Grads()[0]->SquaredNorm(), 0.0);
  layer.ZeroGrads();
  EXPECT_DOUBLE_EQ(layer.Grads()[0]->SquaredNorm(), 0.0);
  EXPECT_DOUBLE_EQ(layer.Grads()[1]->SquaredNorm(), 0.0);
}

TEST(LayerTest, BackwardAccumulatesAcrossCalls) {
  Rng rng(41);
  Linear layer(2, 2, &rng);
  Matrix x = RandomBatch(3, 2, 42);
  layer.Forward(x);
  layer.Backward(Matrix(3, 2, 1.0));
  Matrix g1 = *layer.Grads()[0];
  layer.Forward(x);
  layer.Backward(Matrix(3, 2, 1.0));
  const Matrix& g2 = *layer.Grads()[0];
  for (size_t i = 0; i < g1.size(); ++i) {
    EXPECT_NEAR(g2.data()[i], 2.0 * g1.data()[i], 1e-10);
  }
}

}  // namespace
}  // namespace nn
}  // namespace targad
