#include "cluster/kmeans.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "cluster/elbow.h"
#include "common/rng.h"

namespace targad {
namespace cluster {
namespace {

// Three well-separated 2-D blobs.
nn::Matrix ThreeBlobs(size_t per_blob, uint64_t seed) {
  Rng rng(seed);
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  nn::Matrix x(3 * per_blob, 2);
  for (size_t b = 0; b < 3; ++b) {
    for (size_t i = 0; i < per_blob; ++i) {
      x.At(b * per_blob + i, 0) = rng.Normal(centers[b][0], 0.5);
      x.At(b * per_blob + i, 1) = rng.Normal(centers[b][1], 0.5);
    }
  }
  return x;
}

TEST(KMeansTest, RecoversSeparatedBlobs) {
  nn::Matrix x = ThreeBlobs(50, 1);
  KMeansConfig config;
  config.k = 3;
  config.seed = 2;
  auto result = KMeans(x, config).ValueOrDie();
  // Each blob must land in a single cluster, and the three clusters differ.
  std::set<int> blob_clusters;
  for (size_t b = 0; b < 3; ++b) {
    const int c0 = result.assignments[b * 50];
    for (size_t i = 0; i < 50; ++i) EXPECT_EQ(result.assignments[b * 50 + i], c0);
    blob_clusters.insert(c0);
  }
  EXPECT_EQ(blob_clusters.size(), 3u);
}

TEST(KMeansTest, InertiaIsSumOfSquaredDistances) {
  nn::Matrix x = ThreeBlobs(30, 3);
  KMeansConfig config;
  config.k = 3;
  auto result = KMeans(x, config).ValueOrDie();
  double manual = 0.0;
  for (size_t i = 0; i < x.rows(); ++i) {
    manual += x.RowSquaredDistance(
        i, result.centers, static_cast<size_t>(result.assignments[i]));
  }
  EXPECT_NEAR(result.inertia, manual, 1e-9);
}

TEST(KMeansTest, InertiaDecreasesWithK) {
  nn::Matrix x = ThreeBlobs(40, 4);
  double prev = 1e300;
  for (int k = 1; k <= 5; ++k) {
    KMeansConfig config;
    config.k = k;
    config.seed = 5;
    const double inertia = KMeans(x, config).ValueOrDie().inertia;
    EXPECT_LE(inertia, prev * 1.0001);
    prev = inertia;
  }
}

TEST(KMeansTest, SingleClusterCenterIsMean) {
  nn::Matrix x(4, 1, {1.0, 2.0, 3.0, 4.0});
  KMeansConfig config;
  config.k = 1;
  auto result = KMeans(x, config).ValueOrDie();
  EXPECT_NEAR(result.centers.At(0, 0), 2.5, 1e-12);
}

TEST(KMeansTest, EveryClusterNonEmpty) {
  // Two tight far-apart pairs of near-duplicates plus spread points make
  // empty clusters likely without the farthest-point re-seeding.
  nn::Matrix x(20, 1, 0.0);
  for (size_t i = 0; i < 20; ++i) {
    x.At(i, 0) = (i < 10 ? 0.0 : 100.0) + 0.001 * static_cast<double>(i);
  }
  KMeansConfig config;
  config.k = 4;
  config.seed = 6;
  auto result = KMeans(x, config).ValueOrDie();
  std::vector<int> counts(4, 0);
  for (int a : result.assignments) counts[static_cast<size_t>(a)]++;
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(KMeansTest, RejectsBadInputs) {
  nn::Matrix x(3, 2, 0.0);
  KMeansConfig config;
  config.k = 5;
  EXPECT_FALSE(KMeans(x, config).ok());  // k > rows.
  config.k = 0;
  EXPECT_FALSE(KMeans(x, config).ok());
  config.k = 2;
  EXPECT_FALSE(KMeans(nn::Matrix(3, 0), config).ok());
}

TEST(KMeansTest, DeterministicForSeed) {
  nn::Matrix x = ThreeBlobs(30, 7);
  KMeansConfig config;
  config.k = 3;
  config.seed = 11;
  auto r1 = KMeans(x, config).ValueOrDie();
  auto r2 = KMeans(x, config).ValueOrDie();
  EXPECT_EQ(r1.assignments, r2.assignments);
  EXPECT_DOUBLE_EQ(r1.inertia, r2.inertia);
}

TEST(KMeansTest, ClusterIndicesPartitionRows) {
  nn::Matrix x = ThreeBlobs(20, 8);
  KMeansConfig config;
  config.k = 3;
  auto result = KMeans(x, config).ValueOrDie();
  const auto indices = result.ClusterIndices();
  size_t total = 0;
  for (const auto& cluster : indices) total += cluster.size();
  EXPECT_EQ(total, x.rows());
}

TEST(AssignToCentersTest, PicksNearest) {
  nn::Matrix centers(2, 1, {0.0, 10.0});
  nn::Matrix x(3, 1, {1.0, 9.0, 4.9});
  const auto assign = AssignToCenters(x, centers);
  EXPECT_EQ(assign, (std::vector<int>{0, 1, 0}));
}

TEST(ElbowTest, FindsTrueBlobCount) {
  nn::Matrix x = ThreeBlobs(60, 9);
  auto elbow = SelectKByElbow(x, 1, 8, 10).ValueOrDie();
  EXPECT_EQ(elbow.k, 3);
}

TEST(ElbowTest, InertiasRecordedPerCandidate) {
  nn::Matrix x = ThreeBlobs(30, 10);
  auto elbow = SelectKByElbow(x, 2, 5).ValueOrDie();
  EXPECT_EQ(elbow.candidates.size(), 4u);
  EXPECT_EQ(elbow.inertias.size(), 4u);
}

TEST(ElbowTest, RejectsBadRange) {
  nn::Matrix x = ThreeBlobs(10, 11);
  EXPECT_FALSE(SelectKByElbow(x, 0, 3).ok());
  EXPECT_FALSE(SelectKByElbow(x, 4, 2).ok());
}

}  // namespace
}  // namespace cluster
}  // namespace targad
