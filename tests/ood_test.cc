#include "core/ood.h"
#include <cmath>

#include "common/rng.h"

#include <gtest/gtest.h>

namespace targad {
namespace core {
namespace {

TEST(OodScoresTest, MspHigherForFlatLogits) {
  nn::Matrix logits(2, 4, 0.0);
  logits.At(0, 0) = 8.0;  // Peaked (in-distribution signature).
  const auto scores = OodScores(logits, OodStrategy::kMsp, 2);
  EXPECT_LT(scores[0], scores[1]);
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(OodScoresTest, EnergyHigherForSmallLogits) {
  nn::Matrix logits(2, 4, 0.0);
  logits.At(0, 0) = 10.0;  // High free-energy mass -> low energy -> ID.
  const auto scores = OodScores(logits, OodStrategy::kEnergy, 2);
  EXPECT_LT(scores[0], scores[1]);
}

TEST(OodScoresTest, EnergyDiscrepancyZeroWhenOneTargetLogitDominates) {
  // m = 2: the ED score reads only the first two (target) logits.
  nn::Matrix logits(2, 4, 0.0);
  logits.At(0, 0) = 50.0;
  const auto scores = OodScores(logits, OodStrategy::kEnergyDiscrepancy, 2);
  EXPECT_NEAR(scores[0], 0.0, 1e-9);
  // Flat target block: lse - max = log(2).
  EXPECT_NEAR(scores[1], std::log(2.0), 1e-9);
  for (double s : scores) EXPECT_GE(s, -1e-12);
}

TEST(OodScoresTest, EnergyDiscrepancyIgnoresNormalDims) {
  // Two rows with identical target blocks but very different normal
  // logits must get identical ED scores (unlike MSP).
  nn::Matrix a(1, 4, {2.0, 1.0, 0.0, 0.0});
  nn::Matrix b(1, 4, {2.0, 1.0, 9.0, -3.0});
  EXPECT_NEAR(OodScores(a, OodStrategy::kEnergyDiscrepancy, 2)[0],
              OodScores(b, OodStrategy::kEnergyDiscrepancy, 2)[0], 1e-12);
  EXPECT_GT(std::fabs(OodScores(a, OodStrategy::kMsp, 2)[0] -
                      OodScores(b, OodStrategy::kMsp, 2)[0]),
            1e-6);
}

TEST(OodScoresTest, EnergyDiscrepancyIsShiftInvariant) {
  nn::Matrix a(1, 3, {1.0, 2.0, 0.5});
  nn::Matrix b(1, 3, {11.0, 12.0, 10.5});
  EXPECT_NEAR(OodScores(a, OodStrategy::kEnergyDiscrepancy, 2)[0],
              OodScores(b, OodStrategy::kEnergyDiscrepancy, 2)[0], 1e-12);
}

TEST(OodTest, StrategyNames) {
  EXPECT_STREQ(OodStrategyName(OodStrategy::kMsp), "MSP");
  EXPECT_STREQ(OodStrategyName(OodStrategy::kEnergy), "ES");
  EXPECT_STREQ(OodStrategyName(OodStrategy::kEnergyDiscrepancy), "ED");
}

TEST(OodTest, KindToThreeWayMapsAllKinds) {
  EXPECT_EQ(KindToThreeWay(data::InstanceKind::kNormal), kPredNormal);
  EXPECT_EQ(KindToThreeWay(data::InstanceKind::kTarget), kPredTarget);
  EXPECT_EQ(KindToThreeWay(data::InstanceKind::kNonTarget), kPredNonTarget);
}

// Builds logits with the signatures TargAD's training imprints:
// normal -> mass on a normal dim; target -> peaked on one target dim;
// non-target -> flat over the target dims. m = 2, k = 2.
struct ThreeWayData {
  nn::Matrix logits;
  std::vector<data::InstanceKind> kind;
};

ThreeWayData MakeThreeWayData(size_t per_class) {
  ThreeWayData d;
  d.logits = nn::Matrix(3 * per_class, 4, 0.0);
  Rng rng(13);
  for (size_t i = 0; i < per_class; ++i) {
    // Normal: strong on dim 2 or 3.
    d.logits.At(i, 2 + (i % 2)) = 5.0 + rng.Normal(0.0, 0.3);
    d.kind.push_back(data::InstanceKind::kNormal);
  }
  for (size_t i = 0; i < per_class; ++i) {
    // Target: one target dim dominates.
    d.logits.At(per_class + i, i % 2) = 6.0 + rng.Normal(0.0, 0.3);
    d.kind.push_back(data::InstanceKind::kTarget);
  }
  for (size_t i = 0; i < per_class; ++i) {
    // Non-target: both target dims moderately high (flat over targets).
    d.logits.At(2 * per_class + i, 0) = 3.0 + rng.Normal(0.0, 0.2);
    d.logits.At(2 * per_class + i, 1) = 3.0 + rng.Normal(0.0, 0.2);
    d.kind.push_back(data::InstanceKind::kNonTarget);
  }
  return d;
}

class ThreeWayStrategyTest : public ::testing::TestWithParam<OodStrategy> {};

TEST_P(ThreeWayStrategyTest, SeparatesThreeGroupsOnIdealLogits) {
  ThreeWayData d = MakeThreeWayData(60);
  auto clf = ThreeWayClassifier::Fit(d.logits, d.kind, 2, 2, GetParam())
                 .ValueOrDie();
  const std::vector<int> pred = clf.Predict(d.logits);
  std::vector<int> truth;
  truth.reserve(d.kind.size());
  for (auto k : d.kind) truth.push_back(KindToThreeWay(k));
  size_t correct = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    EXPECT_GE(pred[i], 0);
    EXPECT_LE(pred[i], 2);
    if (pred[i] == truth[i]) ++correct;
  }
  // These logits are idealized, so all three strategies should do well.
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(pred.size()), 0.9)
      << OodStrategyName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Strategies, ThreeWayStrategyTest,
                         ::testing::Values(OodStrategy::kMsp,
                                           OodStrategy::kEnergy,
                                           OodStrategy::kEnergyDiscrepancy));

TEST(ThreeWayClassifierTest, FitRejectsBadInputs) {
  ThreeWayData d = MakeThreeWayData(4);
  EXPECT_FALSE(ThreeWayClassifier::Fit(nn::Matrix(0, 4), {}, 2, 2,
                                       OodStrategy::kMsp)
                   .ok());
  EXPECT_FALSE(
      ThreeWayClassifier::Fit(d.logits, d.kind, 3, 2, OodStrategy::kMsp).ok());
  std::vector<data::InstanceKind> short_kind(d.kind.begin(), d.kind.end() - 1);
  EXPECT_FALSE(ThreeWayClassifier::Fit(d.logits, short_kind, 2, 2,
                                       OodStrategy::kMsp)
                   .ok());
}

TEST(ThreeWayClassifierTest, NormalRuleAppliedBeforeOodSplit) {
  ThreeWayData d = MakeThreeWayData(20);
  auto clf =
      ThreeWayClassifier::Fit(d.logits, d.kind, 2, 2, OodStrategy::kMsp)
          .ValueOrDie();
  // An instance with overwhelming normal mass must be predicted normal
  // regardless of the OOD threshold.
  nn::Matrix normal_logits(1, 4, {0.0, 0.0, 20.0, 0.0});
  EXPECT_EQ(clf.Predict(normal_logits)[0], kPredNormal);
}

}  // namespace
}  // namespace core
}  // namespace targad
