#!/usr/bin/env bash
# End-to-end open-loop load generation against the in-process TCP server:
# a short fixed-rate run must complete with zero protocol errors and zero
# lost replies (the binary exits non-zero otherwise), report the full
# latency ladder, and write the JSON record bench_delta.py consumes.
# Usage: net_loadgen_test.sh <path-to-bench_net_loadgen>
set -u

LOADGEN="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

fail() { echo "FAIL: $1"; exit 1; }

# Tiny training set: the test exercises the replay loop, not the model.
export TARGAD_BENCH_SCALE=0.02

run_one() {
  dist="$1"
  out=$("$LOADGEN" --rate 400 --duration-s 1 --connections 2 \
        --dist "$dist" --seed 7 --json "loadgen_$dist.json" 2>&1) \
    || fail "$dist run failed: $out"
  echo "$out"
  case "$out" in
    *"errors 0, lost 0"*) ;;
    *) fail "$dist run was not clean" ;;
  esac
  case "$out" in
    *"p50 "*"p99 "*"p999 "*) ;;
    *) fail "$dist run missing latency percentiles" ;;
  esac
  [ -s "loadgen_$dist.json" ] || fail "$dist JSON missing"
  grep -q '"bench": "net_loadgen"' "loadgen_$dist.json" \
    || fail "$dist JSON malformed"
  grep -q '"p999_us"' "loadgen_$dist.json" || fail "$dist JSON lacks p999"
}

run_one poisson
run_one uniform

# The offered load must actually be open-loop fixed-rate: ~400 req/s for 1s
# means ~400 sent (Poisson jitters, so accept a wide band).
sent=$(sed -n 's/.*"sent": \([0-9]*\),.*/\1/p' loadgen_poisson.json)
[ "$sent" -ge 200 ] && [ "$sent" -le 800 ] \
  || fail "poisson offered load off target: sent=$sent"

echo "net_loadgen_test PASSED"
exit 0
