#include "nn/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace targad {
namespace nn {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.Uniform(-2.0, 2.0);
  return m;
}

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 1.5);
  m.At(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, FromDataVector) {
  Matrix m(2, 2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 4.0);
}

TEST(MatrixDeathTest, SizeMismatchAborts) {
  EXPECT_DEATH({ Matrix m(2, 2, {1.0, 2.0, 3.0}); }, "Matrix data size");
}

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = a.MatMul(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 154.0);
}

TEST(MatrixTest, MatMulIdentity) {
  Matrix a = RandomMatrix(4, 4, 1);
  Matrix id(4, 4);
  for (size_t i = 0; i < 4; ++i) id.At(i, i) = 1.0;
  Matrix c = a.MatMul(id);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(c.data()[i], a.data()[i], 1e-12);
  }
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix a = RandomMatrix(3, 5, 2);
  Matrix t = a.Transpose();
  EXPECT_EQ(t.rows(), 5u);
  EXPECT_EQ(t.cols(), 3u);
  Matrix tt = t.Transpose();
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(tt.data()[i], a.data()[i]);
}

// Property: the fused products agree with explicit transpose+matmul.
class FusedMatMulTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(FusedMatMulTest, TransposeMatMulMatchesExplicit) {
  const auto [m, k, n] = GetParam();
  Matrix a = RandomMatrix(k, m, 3);  // Will be transposed: (m x k).
  Matrix b = RandomMatrix(k, n, 4);
  Matrix fused = a.TransposeMatMul(b);
  Matrix explicit_result = a.Transpose().MatMul(b);
  ASSERT_TRUE(fused.SameShape(explicit_result));
  for (size_t i = 0; i < fused.size(); ++i) {
    EXPECT_NEAR(fused.data()[i], explicit_result.data()[i], 1e-10);
  }
}

TEST_P(FusedMatMulTest, MatMulTransposeMatchesExplicit) {
  const auto [m, k, n] = GetParam();
  Matrix a = RandomMatrix(m, k, 5);
  Matrix b = RandomMatrix(n, k, 6);  // Will be transposed: (k x n).
  Matrix fused = a.MatMulTranspose(b);
  Matrix explicit_result = a.MatMul(b.Transpose());
  ASSERT_TRUE(fused.SameShape(explicit_result));
  for (size_t i = 0; i < fused.size(); ++i) {
    EXPECT_NEAR(fused.data()[i], explicit_result.data()[i], 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FusedMatMulTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(5, 1, 7), std::make_tuple(8, 8, 8),
                      std::make_tuple(1, 16, 3), std::make_tuple(13, 7, 2)));

TEST(MatrixDeathTest, MatMulShapeMismatchAborts) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_DEATH({ (void)a.MatMul(b); }, "MatMul shape mismatch");
}

TEST(MatrixTest, ElementwiseOps) {
  Matrix a(1, 3, {1, 2, 3});
  Matrix b(1, 3, {10, 20, 30});
  EXPECT_DOUBLE_EQ(a.Add(b).At(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(b.Sub(a).At(0, 2), 27.0);
  EXPECT_DOUBLE_EQ(a.Mul(3.0).At(0, 0), 3.0);
  Matrix h = a;
  h.HadamardInPlace(b);
  EXPECT_DOUBLE_EQ(h.At(0, 2), 90.0);
}

TEST(MatrixTest, AddRowVector) {
  Matrix a(2, 2, {1, 1, 2, 2});
  a.AddRowVectorInPlace({10.0, 20.0});
  EXPECT_DOUBLE_EQ(a.At(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(a.At(0, 1), 21.0);
  EXPECT_DOUBLE_EQ(a.At(1, 0), 12.0);
  EXPECT_DOUBLE_EQ(a.At(1, 1), 22.0);
}

TEST(MatrixTest, Reductions) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(a.ColSums(), (std::vector<double>{5, 7, 9}));
  EXPECT_EQ(a.RowSums(), (std::vector<double>{6, 15}));
  EXPECT_DOUBLE_EQ(a.Sum(), 21.0);
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), 91.0);
  const auto norms = a.RowSquaredNorms();
  EXPECT_DOUBLE_EQ(norms[0], 14.0);
  EXPECT_DOUBLE_EQ(norms[1], 77.0);
}

TEST(MatrixTest, RowSquaredDistance) {
  Matrix a(1, 2, {0.0, 0.0});
  Matrix b(1, 2, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(a.RowSquaredDistance(0, b, 0), 25.0);
}

TEST(MatrixTest, SelectRows) {
  Matrix a(3, 2, {1, 2, 3, 4, 5, 6});
  Matrix sel = a.SelectRows({2, 0});
  ASSERT_EQ(sel.rows(), 2u);
  EXPECT_DOUBLE_EQ(sel.At(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sel.At(1, 1), 2.0);
}

TEST(MatrixTest, AppendRows) {
  Matrix a(1, 2, {1, 2});
  Matrix b(2, 2, {3, 4, 5, 6});
  a.AppendRows(b);
  ASSERT_EQ(a.rows(), 3u);
  EXPECT_DOUBLE_EQ(a.At(2, 1), 6.0);
}

TEST(MatrixTest, AppendRowsToEmpty) {
  Matrix a;
  Matrix b(2, 3, 1.0);
  a.AppendRows(b);
  EXPECT_EQ(a.rows(), 2u);
  EXPECT_EQ(a.cols(), 3u);
}

TEST(MatrixTest, RowBlockViewsShareStorage) {
  Matrix a(4, 2, {1, 2, 3, 4, 5, 6, 7, 8});
  RowBlock mid = a.RowBlock(1, 2);
  EXPECT_EQ(mid.rows(), 2u);
  EXPECT_EQ(mid.cols(), 2u);
  EXPECT_DOUBLE_EQ(mid.At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(mid.At(1, 1), 6.0);
  // Zero-copy: the view aliases the matrix storage directly.
  EXPECT_EQ(mid.data(), a.RowPtr(1));
  EXPECT_EQ(mid.RowPtr(1), a.RowPtr(2));
}

TEST(MatrixTest, RowBlockToMatrixMaterializesCopy) {
  Matrix a(3, 2, {1, 2, 3, 4, 5, 6});
  Matrix tail = a.RowBlock(1, 2).ToMatrix();
  ASSERT_EQ(tail.rows(), 2u);
  EXPECT_DOUBLE_EQ(tail.At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(tail.At(1, 1), 6.0);
  a.At(1, 0) = 99.0;  // Mutating the source must not touch the copy.
  EXPECT_DOUBLE_EQ(tail.At(0, 0), 3.0);
}

TEST(MatrixTest, RowBlockImplicitFromWholeMatrix) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  RowBlock view = a;  // Implicit whole-matrix view.
  EXPECT_EQ(view.rows(), a.rows());
  EXPECT_EQ(view.cols(), a.cols());
  EXPECT_EQ(view.data(), a.data().data());
  RowBlock empty_range = a.RowBlock(2, 0);
  EXPECT_TRUE(empty_range.empty());
  EXPECT_EQ(empty_range.rows(), 0u);
}

TEST(MatrixTest, MapAndRowOps) {
  Matrix a(1, 3, {-1.0, 0.0, 2.0});
  Matrix sq = a.Map([](double v) { return v * v; });
  EXPECT_DOUBLE_EQ(sq.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(sq.At(0, 2), 4.0);
  a.SetRow(0, {7.0, 8.0, 9.0});
  EXPECT_EQ(a.Row(0), (std::vector<double>{7.0, 8.0, 9.0}));
}

}  // namespace
}  // namespace nn
}  // namespace targad
