#include "serve/batch_scorer.h"

#include <atomic>
#include <future>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "serve/metrics.h"
#include "serve/model_registry.h"

namespace targad {
namespace serve {
namespace {

// Small mixed numeric/categorical training table (mirrors pipeline_test).
data::RawTable MakeTrainingTable(uint64_t seed) {
  Rng rng(seed);
  data::RawTable table;
  table.column_names = {"amount", "rate", "channel", "label"};
  auto add_row = [&](double amount, double rate, const char* channel,
                     const std::string& label) {
    table.rows.push_back(
        {std::to_string(amount), std::to_string(rate), channel, label});
  };
  for (size_t i = 0; i < 400; ++i) {
    const bool mode = rng.Bernoulli(0.5);
    add_row(rng.Normal(mode ? 20.0 : 60.0, 4.0), rng.Normal(0.3, 0.05),
            mode ? "web" : "pos", "");
  }
  for (size_t i = 0; i < 25; ++i) {
    add_row(rng.Normal(150.0, 5.0), rng.Normal(0.9, 0.03), "web", "fraud");
  }
  return table;
}

std::shared_ptr<const core::TargAdPipeline> TrainPipeline(uint64_t seed) {
  core::PipelineConfig config;
  config.model.seed = seed;
  config.model.selection.k = 2;
  config.model.selection.autoencoder.epochs = 5;
  config.model.epochs = 8;
  auto pipeline = core::TargAdPipeline::Train(MakeTrainingTable(seed), config);
  return std::make_shared<const core::TargAdPipeline>(
      std::move(pipeline).ValueOrDie());
}

// Feature rows (no label column) plus the pipeline's serial scores.
struct ScoringFixture {
  std::shared_ptr<const core::TargAdPipeline> pipeline;
  std::vector<std::vector<std::string>> rows;
  std::vector<double> serial_scores;
};

ScoringFixture MakeFixture(uint64_t seed, size_t n_rows) {
  ScoringFixture fx;
  fx.pipeline = TrainPipeline(seed);
  Rng rng(seed + 1000);
  data::RawTable table;
  table.column_names = fx.pipeline->feature_columns();
  for (size_t i = 0; i < n_rows; ++i) {
    const char* channel = i % 3 == 0 ? "web" : (i % 3 == 1 ? "pos" : "app");
    fx.rows.push_back({std::to_string(rng.Normal(50.0, 30.0)),
                       std::to_string(rng.Normal(0.5, 0.2)), channel});
    table.rows.push_back(fx.rows.back());
  }
  fx.serial_scores = fx.pipeline->Score(table).ValueOrDie();
  return fx;
}

TEST(BatchScorerTest, SingleThreadMatchesSerialBitExact) {
  ScoringFixture fx = MakeFixture(7, 64);
  BatchScorerOptions options;
  options.max_batch_size = 16;
  BatchScorer scorer(fx.pipeline, options);
  std::vector<std::future<Result<double>>> futures;
  for (const auto& row : fx.rows) futures.push_back(scorer.Submit(row));
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<double> result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // Bit-identical, not approximately equal: the whole pipeline is
    // row-independent, so batching must not change a single ULP.
    EXPECT_EQ(*result, fx.serial_scores[i]) << "row " << i;
  }
}

TEST(BatchScorerTest, ConcurrentSubmittersMatchSerialBitExact) {
  ScoringFixture fx = MakeFixture(11, 96);
  BatchScorerOptions options;
  options.max_batch_size = 8;
  options.num_workers = 4;
  ServeMetrics metrics;
  BatchScorer scorer(fx.pipeline, options, &metrics);

  constexpr size_t kThreads = 8;
  constexpr int kRounds = 5;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = t; i < fx.rows.size(); i += kThreads) {
          Result<double> result = scorer.Submit(fx.rows[i]).get();
          if (!result.ok()) {
            failures.fetch_add(1);
          } else if (*result != fx.serial_scores[i]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  const MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.requests_completed, kThreads * kRounds * (96 / kThreads));
  EXPECT_EQ(snapshot.rows_scored, snapshot.requests_completed);
  EXPECT_GT(snapshot.batches, 0u);
}

TEST(BatchScorerTest, ScoresStayCorrectAcrossHotSwap) {
  // Two models over the same schema; swap while 4 submitter threads hammer
  // the scorer. Every score must match one of the two serial references —
  // no torn reads, no scores from a half-swapped model.
  ScoringFixture fx_a = MakeFixture(21, 48);
  std::shared_ptr<const core::TargAdPipeline> pipeline_b = TrainPipeline(22);
  data::RawTable table;
  table.column_names = pipeline_b->feature_columns();
  for (const auto& row : fx_a.rows) table.rows.push_back(row);
  const std::vector<double> serial_b = pipeline_b->Score(table).ValueOrDie();

  ModelRegistry registry;
  registry.Publish("m", fx_a.pipeline);
  BatchScorerOptions options;
  options.max_batch_size = 8;
  options.num_workers = 2;
  ServeMetrics metrics;
  BatchScorer scorer(
      [&registry] {
        auto snapshot = registry.Get("m");
        return snapshot.ok() ? *snapshot
                             : std::shared_ptr<const core::TargAdPipeline>();
      },
      options, &metrics);

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      while (!stop.load()) {
        for (size_t i = 0; i < fx_a.rows.size() && !stop.load(); ++i) {
          Result<double> result = scorer.Submit(fx_a.rows[i]).get();
          if (!result.ok()) {
            failures.fetch_add(1);
          } else if (*result != fx_a.serial_scores[i] &&
                     *result != serial_b[i]) {
            bad.fetch_add(1);
          }
        }
      }
    });
  }
  // Swap back and forth while traffic flows.
  for (int swap = 0; swap < 6; ++swap) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    registry.Publish("m", swap % 2 == 0 ? pipeline_b : fx_a.pipeline);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  for (auto& t : submitters) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GE(metrics.Snapshot().model_swaps, 1u);
}

TEST(BatchScorerTest, OverloadRejectsWithResourceExhausted) {
  ScoringFixture fx = MakeFixture(31, 8);
  BatchScorerOptions options;
  // The batch can never fill (64 > queue bound 4) and the coalescing delay
  // is huge, so the worker parks and the queue backs up deterministically.
  options.max_batch_size = 64;
  options.max_queue_rows = 4;
  options.max_queue_delay_us = 30'000'000;
  ServeMetrics metrics;
  BatchScorer scorer(fx.pipeline, options, &metrics);

  std::vector<std::future<Result<double>>> futures;
  bool saw_rejection = false;
  for (int i = 0; i < 64; ++i) {
    std::future<Result<double>> future = scorer.Submit(fx.rows[i % 8]);
    // Rejections resolve immediately; admitted rows stay pending.
    if (future.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      Result<double> result = future.get();
      ASSERT_FALSE(result.ok());
      EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
      saw_rejection = true;
    } else {
      futures.push_back(std::move(future));
    }
  }
  EXPECT_TRUE(saw_rejection);
  EXPECT_GT(metrics.Snapshot().requests_rejected, 0u);
  // Shutdown drains the admitted rows (ignoring the coalescing delay);
  // every admitted future must still resolve to a real score.
  scorer.Shutdown();
  for (auto& future : futures) {
    Result<double> result = future.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
}

TEST(BatchScorerTest, MalformedRowFailsAloneInItsBatch) {
  ScoringFixture fx = MakeFixture(41, 8);
  BatchScorerOptions options;
  options.max_batch_size = 8;
  options.max_queue_delay_us = 50'000;  // Force one batch.
  BatchScorer scorer(fx.pipeline, options);

  std::vector<std::future<Result<double>>> futures;
  futures.push_back(scorer.Submit(fx.rows[0]));
  futures.push_back(scorer.Submit({"not-a-number", "0.5", "web"}));
  futures.push_back(scorer.Submit({"1.0"}));  // Wrong arity.
  futures.push_back(scorer.Submit(fx.rows[1]));

  Result<double> good0 = futures[0].get();
  ASSERT_TRUE(good0.ok()) << good0.status().ToString();
  EXPECT_EQ(*good0, fx.serial_scores[0]);

  Result<double> bad_cell = futures[1].get();
  ASSERT_FALSE(bad_cell.ok());
  EXPECT_EQ(bad_cell.status().code(), StatusCode::kInvalidArgument);

  Result<double> bad_arity = futures[2].get();
  ASSERT_FALSE(bad_arity.ok());
  EXPECT_EQ(bad_arity.status().code(), StatusCode::kInvalidArgument);

  Result<double> good1 = futures[3].get();
  ASSERT_TRUE(good1.ok()) << good1.status().ToString();
  EXPECT_EQ(*good1, fx.serial_scores[1]);
}

TEST(BatchScorerTest, NoModelFailsWithFailedPrecondition) {
  BatchScorerOptions options;
  BatchScorer scorer(
      [] { return std::shared_ptr<const core::TargAdPipeline>(); }, options);
  Result<double> result = scorer.Submit({"1", "2", "web"}).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(BatchScorerTest, RoutesRowsToNamedModels) {
  // Two models with the same schema but different parameters; rows tagged
  // with a model name must come back with THAT model's serial score even
  // when both groups share one micro-batch.
  ScoringFixture fx_a = MakeFixture(61, 16);
  std::shared_ptr<const core::TargAdPipeline> pipeline_b = TrainPipeline(62);
  data::RawTable table;
  table.column_names = pipeline_b->feature_columns();
  for (const auto& row : fx_a.rows) table.rows.push_back(row);
  const std::vector<double> serial_b = pipeline_b->Score(table).ValueOrDie();

  ModelRegistry registry;
  registry.Publish("default", fx_a.pipeline);
  registry.Publish("candidate", pipeline_b);

  BatchScorerOptions options;
  options.max_batch_size = 32;           // Both models fit one batch.
  options.max_queue_delay_us = 50'000;   // Force coalescing.
  ServeMetrics metrics;
  BatchScorer scorer(
      BatchScorer::NamedSnapshotProvider([&registry](const std::string& name) {
        auto snapshot = registry.GetScorer(name);
        return snapshot.ok() ? *snapshot
                             : std::shared_ptr<const core::RowScorer>();
      }),
      options, &metrics);

  std::vector<std::future<Result<double>>> default_futures, routed_futures;
  for (const auto& row : fx_a.rows) {
    default_futures.push_back(scorer.Submit(row));
    routed_futures.push_back(scorer.Submit("candidate", row));
  }
  for (size_t i = 0; i < fx_a.rows.size(); ++i) {
    Result<double> from_default = default_futures[i].get();
    ASSERT_TRUE(from_default.ok()) << from_default.status().ToString();
    EXPECT_EQ(*from_default, fx_a.serial_scores[i]) << "row " << i;
    Result<double> from_candidate = routed_futures[i].get();
    ASSERT_TRUE(from_candidate.ok()) << from_candidate.status().ToString();
    EXPECT_EQ(*from_candidate, serial_b[i]) << "row " << i;
  }

  // Futures resolve before the worker records per-model counters; drain so
  // the snapshot below observes the finished batch.
  scorer.Drain();
  const MetricsSnapshot snapshot = metrics.Snapshot();
  ASSERT_EQ(snapshot.per_model.count("default"), 1u);
  ASSERT_EQ(snapshot.per_model.count("candidate"), 1u);
  EXPECT_EQ(snapshot.per_model.at("default").rows_scored, fx_a.rows.size());
  EXPECT_EQ(snapshot.per_model.at("default").rows_failed, 0u);
  EXPECT_EQ(snapshot.per_model.at("candidate").rows_scored, fx_a.rows.size());
}

TEST(BatchScorerTest, UnknownModelFailsItsRowsNotTheBatch) {
  ScoringFixture fx = MakeFixture(71, 8);
  ModelRegistry registry;
  registry.Publish("default", fx.pipeline);

  BatchScorerOptions options;
  options.max_batch_size = 8;
  options.max_queue_delay_us = 50'000;  // One batch mixing both groups.
  ServeMetrics metrics;
  BatchScorer scorer(
      BatchScorer::NamedSnapshotProvider([&registry](const std::string& name) {
        auto snapshot = registry.GetScorer(name);
        return snapshot.ok() ? *snapshot
                             : std::shared_ptr<const core::RowScorer>();
      }),
      options, &metrics);

  std::future<Result<double>> good = scorer.Submit(fx.rows[0]);
  std::future<Result<double>> missing = scorer.Submit("no-such", fx.rows[1]);
  std::future<Result<double>> good2 = scorer.Submit(fx.rows[2]);

  Result<double> bad = missing.get();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);

  Result<double> ok0 = good.get();
  ASSERT_TRUE(ok0.ok()) << ok0.status().ToString();
  EXPECT_EQ(*ok0, fx.serial_scores[0]);
  Result<double> ok2 = good2.get();
  ASSERT_TRUE(ok2.ok()) << ok2.status().ToString();
  EXPECT_EQ(*ok2, fx.serial_scores[2]);

  scorer.Drain();
  const MetricsSnapshot snapshot = metrics.Snapshot();
  ASSERT_EQ(snapshot.per_model.count("no-such"), 1u);
  EXPECT_EQ(snapshot.per_model.at("no-such").rows_failed, 1u);
  EXPECT_EQ(snapshot.per_model.at("no-such").rows_scored, 0u);
}

TEST(BatchScorerTest, Float32SnapshotsServeWithinTolerance) {
  ScoringFixture fx = MakeFixture(81, 32);
  auto frozen = std::make_shared<const core::FrozenScorer>(
      fx.pipeline->Freeze(nn::Dtype::kFloat32).ValueOrDie());

  BatchScorerOptions options;
  options.max_batch_size = 8;
  options.num_workers = 2;
  BatchScorer scorer(
      BatchScorer::NamedSnapshotProvider(
          [frozen](const std::string&)
              -> std::shared_ptr<const core::RowScorer> { return frozen; }),
      options);
  std::vector<std::future<Result<double>>> futures;
  for (const auto& row : fx.rows) futures.push_back(scorer.Submit(row));
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<double> result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_NEAR(*result, fx.serial_scores[i], 1e-4) << "row " << i;
  }
}

TEST(BatchScorerTest, SubmitAfterShutdownFails) {
  ScoringFixture fx = MakeFixture(51, 4);
  BatchScorer scorer(fx.pipeline, BatchScorerOptions{});
  scorer.Shutdown();
  Result<double> result = scorer.Submit(fx.rows[0]).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace serve
}  // namespace targad
