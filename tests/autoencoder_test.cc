#include "nn/autoencoder.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/metrics.h"

namespace targad {
namespace nn {
namespace {

// Data on a 2-D manifold embedded in 8 dims (plus small noise).
Matrix ManifoldData(size_t n, uint64_t seed, double noise = 0.01) {
  Rng rng(seed);
  Matrix x(n, 8);
  for (size_t i = 0; i < n; ++i) {
    const double a = rng.Uniform();
    const double b = rng.Uniform();
    double* row = x.RowPtr(i);
    row[0] = a;
    row[1] = b;
    row[2] = 0.5 * (a + b);
    row[3] = a * 0.8 + 0.1;
    row[4] = b * 0.6 + 0.2;
    row[5] = 0.3 * a + 0.4 * b;
    row[6] = 0.9 - 0.5 * a;
    row[7] = 0.1 + 0.7 * b;
    for (size_t j = 0; j < 8; ++j) row[j] += rng.Normal(0.0, noise);
  }
  return x;
}

TEST(AutoencoderTest, ReconstructionImprovesWithTraining) {
  AutoencoderConfig config;
  config.input_dim = 8;
  config.encoder_dims = {6, 2};
  config.learning_rate = 1e-2;
  config.seed = 1;
  Autoencoder ae(config);
  Matrix x = ManifoldData(256, 2);
  const double initial = MseLoss(ae.Reconstruct(x), x).loss;
  for (int epoch = 0; epoch < 300; ++epoch) ae.TrainStepMse(x);
  const double trained = MseLoss(ae.Reconstruct(x), x).loss;
  EXPECT_LT(trained, initial * 0.05);
}

TEST(AutoencoderTest, CodeDimMatchesBottleneck) {
  AutoencoderConfig config;
  config.input_dim = 8;
  config.encoder_dims = {6, 3};
  Autoencoder ae(config);
  EXPECT_EQ(ae.code_dim(), 3u);
  Matrix x = ManifoldData(4, 3);
  EXPECT_EQ(ae.Encode(x).cols(), 3u);
  EXPECT_EQ(ae.Reconstruct(x).cols(), 8u);
}

TEST(AutoencoderTest, OffManifoldPointsReconstructWorse) {
  AutoencoderConfig config;
  config.input_dim = 8;
  config.encoder_dims = {6, 2};
  config.learning_rate = 1e-2;
  config.seed = 1;
  Autoencoder ae(config);
  Matrix x = ManifoldData(512, 5);
  for (int epoch = 0; epoch < 300; ++epoch) ae.TrainStepMse(x);

  // In-manifold test points vs uniformly random off-manifold points.
  Matrix inliers = ManifoldData(64, 6);
  Rng rng(7);
  Matrix outliers(64, 8);
  for (double& v : outliers.data()) v = rng.Uniform();

  const auto in_errs = ae.ReconstructionErrors(inliers);
  const auto out_errs = ae.ReconstructionErrors(outliers);
  std::vector<double> scores;
  std::vector<int> labels;
  for (double e : in_errs) {
    scores.push_back(e);
    labels.push_back(0);
  }
  for (double e : out_errs) {
    scores.push_back(e);
    labels.push_back(1);
  }
  // Reconstruction error must rank outliers above inliers almost always.
  EXPECT_GT(eval::Auroc(scores, labels).ValueOrDie(), 0.9);
}

TEST(AutoencoderTest, SigmoidOutputStaysInUnitRange) {
  AutoencoderConfig config;
  config.input_dim = 8;
  config.encoder_dims = {4, 2};
  Autoencoder ae(config);
  Matrix x = ManifoldData(16, 8);
  Matrix recon = ae.Reconstruct(x);
  for (double v : recon.data()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

}  // namespace
}  // namespace nn
}  // namespace targad
