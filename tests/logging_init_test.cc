#include <cmath>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/status.h"
#include "nn/init.h"

namespace targad {
namespace {

TEST(LoggingTest, LevelRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, NonFatalLevelsDoNotAbort) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // Silence the output in test logs.
  TARGAD_LOG(Debug) << "debug message";
  TARGAD_LOG(Info) << "info message";
  TARGAD_LOG(Warning) << "warning message";
  TARGAD_LOG(Error) << "error message";
  SetLogLevel(original);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ TARGAD_CHECK(1 == 2) << "impossible"; }, "Check failed");
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH({ TARGAD_CHECK_OK(Status::Internal("boom")); }, "boom");
}

TEST(LoggingTest, CheckOkPassesOnOk) {
  TARGAD_CHECK_OK(Status::OK());  // Must not abort.
}

TEST(LoggingTest, SetLogSinkRedirectsAndRestores) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  FILE* capture = std::tmpfile();
  ASSERT_NE(capture, nullptr);
  FILE* previous = SetLogSink(capture);
  EXPECT_EQ(previous, nullptr);  // Default sink is the stderr fallback.
  TARGAD_LOG(Info) << "captured line";
  EXPECT_EQ(SetLogSink(nullptr), capture);  // Restore, returning ours.
  SetLogLevel(original);

  std::rewind(capture);
  char buf[256] = {0};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, capture);
  std::fclose(capture);
  EXPECT_GT(n, 0u);
  EXPECT_NE(std::string(buf, n).find("captured line"), std::string::npos);
}

TEST(InitTest, HeUniformBoundsAndSpread) {
  Rng rng(1);
  nn::Matrix w(64, 32);
  nn::HeUniform(&w, /*fan_in=*/64, &rng);
  const double limit = std::sqrt(6.0 / 64.0);
  double max_abs = 0.0;
  for (double v : w.data()) {
    EXPECT_LE(std::fabs(v), limit + 1e-12);
    max_abs = std::max(max_abs, std::fabs(v));
  }
  // The draw must actually use the range, not collapse near zero.
  EXPECT_GT(max_abs, 0.8 * limit);
}

TEST(InitTest, XavierUniformBounds) {
  Rng rng(2);
  nn::Matrix w(48, 16);
  nn::XavierUniform(&w, 48, 16, &rng);
  const double limit = std::sqrt(6.0 / (48.0 + 16.0));
  for (double v : w.data()) EXPECT_LE(std::fabs(v), limit + 1e-12);
}

TEST(InitTest, GaussianInitMoments) {
  Rng rng(3);
  nn::Matrix w(100, 100);
  nn::GaussianInit(&w, 0.5, &rng);
  double sum = 0.0, sum_sq = 0.0;
  for (double v : w.data()) {
    sum += v;
    sum_sq += v * v;
  }
  const double n = static_cast<double>(w.size());
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(std::sqrt(sum_sq / n), 0.5, 0.02);
}

}  // namespace
}  // namespace targad
