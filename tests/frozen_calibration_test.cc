// Calibration of the dtype-split serving path: the float64 frozen scorer
// must reproduce TargAdPipeline::Score bit-for-bit, and the float32 scorer
// must stay inside explicit drift tolerances — both on raw S^tar scores
// (max abs delta) and on the ranking metric the paper reports (AUROC).

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "core/frozen_scorer.h"
#include "core/pipeline.h"
#include "eval/metrics.h"
#include "nn/frozen.h"

namespace targad {
namespace core {
namespace {

// Mixed numeric/categorical table, like a transaction feed: two normal
// modes, one labeled fraud cluster.
data::RawTable MakeTrainingTable(uint64_t seed, size_t normals) {
  Rng rng(seed);
  data::RawTable table;
  table.column_names = {"amount", "rate", "channel", "label"};
  for (size_t i = 0; i < normals; ++i) {
    const bool mode = rng.Bernoulli(0.5);
    table.rows.push_back({FormatDouble(rng.Normal(mode ? 20.0 : 60.0, 4.0), 6),
                          FormatDouble(rng.Normal(0.3, 0.05), 6),
                          mode ? "web" : "pos", ""});
  }
  for (size_t i = 0; i < normals / 12 + 10; ++i) {
    table.rows.push_back({FormatDouble(rng.Normal(150.0, 5.0), 6),
                          FormatDouble(rng.Normal(0.9, 0.03), 6), "web",
                          "fraud"});
  }
  return table;
}

// Labeled evaluation rows: label 1 = drawn from the fraud cluster.
struct EvalRows {
  data::RawTable table;  // Feature columns only.
  std::vector<int> labels;
};

EvalRows MakeEvalRows(uint64_t seed, size_t n) {
  Rng rng(seed);
  EvalRows eval;
  eval.table.column_names = {"amount", "rate", "channel"};
  for (size_t i = 0; i < n; ++i) {
    const bool fraud = rng.Bernoulli(0.25);
    if (fraud) {
      eval.table.rows.push_back(
          {FormatDouble(rng.Normal(150.0, 5.0), 6),
           FormatDouble(rng.Normal(0.9, 0.03), 6), "web"});
    } else {
      const bool mode = rng.Bernoulli(0.5);
      eval.table.rows.push_back(
          {FormatDouble(rng.Normal(mode ? 20.0 : 60.0, 4.0), 6),
           FormatDouble(rng.Normal(0.3, 0.05), 6), mode ? "web" : "pos"});
    }
    eval.labels.push_back(fraud ? 1 : 0);
  }
  return eval;
}

TargAdPipeline TrainPipeline(uint64_t seed) {
  PipelineConfig config;
  config.model.seed = seed;
  config.model.selection.k = 2;
  config.model.selection.autoencoder.epochs = 8;
  config.model.epochs = 12;
  return TargAdPipeline::Train(MakeTrainingTable(seed, 500), config)
      .ValueOrDie();
}

TEST(FrozenCalibrationTest, Float64FreezeIsBitIdenticalToPipeline) {
  const TargAdPipeline pipeline = TrainPipeline(3);
  auto frozen = pipeline.Freeze(nn::Dtype::kFloat64);
  ASSERT_TRUE(frozen.ok()) << frozen.status().ToString();
  EXPECT_EQ(frozen->dtype(), nn::Dtype::kFloat64);

  const EvalRows eval = MakeEvalRows(103, 400);
  const std::vector<double> exact = pipeline.Score(eval.table).ValueOrDie();
  const std::vector<double> via_frozen = frozen->Score(eval.table).ValueOrDie();
  ASSERT_EQ(exact.size(), via_frozen.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    // The acceptance bar: not close, EQUAL. The frozen path replays the
    // exact normalization, one-hot, inference, and softmax arithmetic.
    EXPECT_EQ(via_frozen[i], exact[i]) << "row " << i;
  }
}

TEST(FrozenCalibrationTest, Float32DriftStaysWithinTolerances) {
  const TargAdPipeline pipeline = TrainPipeline(4);
  auto frozen = pipeline.Freeze(nn::Dtype::kFloat32);
  ASSERT_TRUE(frozen.ok()) << frozen.status().ToString();
  EXPECT_EQ(frozen->dtype(), nn::Dtype::kFloat32);

  const EvalRows eval = MakeEvalRows(104, 600);
  const std::vector<double> exact = pipeline.Score(eval.table).ValueOrDie();
  const std::vector<double> narrow = frozen->Score(eval.table).ValueOrDie();
  ASSERT_EQ(exact.size(), narrow.size());

  double max_abs_delta = 0.0;
  for (size_t i = 0; i < exact.size(); ++i) {
    max_abs_delta = std::max(max_abs_delta, std::abs(narrow[i] - exact[i]));
  }
  // Scores are softmax probabilities in [0, 1]; float32 drift through the
  // small serving MLP stays far below any decision threshold granularity.
  EXPECT_LT(max_abs_delta, 1e-4) << "float32 score drift too large";
  EXPECT_GT(max_abs_delta, 0.0) << "suspiciously exact — float32 path unused?";

  const double auroc_exact = eval::Auroc(exact, eval.labels).ValueOrDie();
  const double auroc_narrow = eval::Auroc(narrow, eval.labels).ValueOrDie();
  // Ranking quality must be essentially unchanged.
  EXPECT_LT(std::abs(auroc_exact - auroc_narrow), 2e-3)
      << "exact=" << auroc_exact << " narrow=" << auroc_narrow;
  // Sanity: the model actually separates the fraud cluster, so the AUROC
  // comparison above is not vacuous (0.5 vs 0.5).
  EXPECT_GT(auroc_exact, 0.9);
}

TEST(FrozenCalibrationTest, FrozenScorerKeepsSchemaAndRejectsMismatch) {
  const TargAdPipeline pipeline = TrainPipeline(5);
  auto frozen = pipeline.Freeze(nn::Dtype::kFloat32);
  ASSERT_TRUE(frozen.ok());
  EXPECT_EQ(frozen->feature_columns(), pipeline.feature_columns());
  EXPECT_EQ(frozen->label_column(), pipeline.label_column());

  data::RawTable wrong;
  wrong.column_names = {"amount", "speed", "channel"};
  wrong.rows.push_back({"10", "0.5", "web"});
  auto scores = frozen->Score(wrong);
  ASSERT_FALSE(scores.ok());
  EXPECT_EQ(scores.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrozenCalibrationTest, FrozenScorerDropsLabelColumnLikeThePipeline) {
  const TargAdPipeline pipeline = TrainPipeline(6);
  auto frozen = pipeline.Freeze(nn::Dtype::kFloat64);
  ASSERT_TRUE(frozen.ok());

  EvalRows eval = MakeEvalRows(106, 50);
  data::RawTable with_label = eval.table;
  with_label.column_names.push_back("label");
  for (auto& row : with_label.rows) row.push_back("unlabeled");

  const std::vector<double> bare = frozen->Score(eval.table).ValueOrDie();
  const std::vector<double> labeled = frozen->Score(with_label).ValueOrDie();
  ASSERT_EQ(bare.size(), labeled.size());
  for (size_t i = 0; i < bare.size(); ++i) EXPECT_EQ(bare[i], labeled[i]);
}

TEST(FrozenCalibrationTest, FreezeBeforeFitFails) {
  TargADConfig config;
  auto model = TargAD::Make(config).ValueOrDie();
  auto plan = model.Freeze(nn::Dtype::kFloat32);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace core
}  // namespace targad
