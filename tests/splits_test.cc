#include "data/splits.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "test_util.h"

namespace targad {
namespace data {
namespace {

TEST(TwoWaySplitTest, SizesAndDisjointness) {
  Rng rng(1);
  std::vector<size_t> first, second;
  TwoWaySplit(100, 0.3, &rng, &first, &second);
  EXPECT_EQ(first.size(), 30u);
  EXPECT_EQ(second.size(), 70u);
  std::set<size_t> all(first.begin(), first.end());
  all.insert(second.begin(), second.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(StratifiedSplitTest, PreservesClassProportions) {
  std::vector<int> labels;
  for (int i = 0; i < 80; ++i) labels.push_back(0);
  for (int i = 0; i < 20; ++i) labels.push_back(1);
  Rng rng(2);
  std::vector<size_t> first, second;
  StratifiedSplit(labels, 0.5, &rng, &first, &second);
  size_t first_class1 = 0;
  for (size_t i : first) first_class1 += labels[i] == 1 ? 1 : 0;
  EXPECT_EQ(first.size(), 50u);
  EXPECT_EQ(first_class1, 10u);
}

class AssembleBundleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto world = SyntheticWorld::Make(targad::testing::TinyWorldConfig()).ValueOrDie();
    Rng rng(3);
    pool_ = world.GeneratePool(1200, 150, 150, &rng);
  }

  AssemblyConfig BaseConfig() {
    AssemblyConfig config;
    config.num_target_classes = 2;
    config.labeled_per_class = 20;
    config.unlabeled_size = 600;
    config.contamination = 0.05;
    config.target_share_of_contamination = 0.4;
    config.val_normal = 100;
    config.val_target = 20;
    config.val_nontarget = 25;
    config.test_normal = 150;
    config.test_target = 30;
    config.test_nontarget = 35;
    config.seed = 7;
    return config;
  }

  LabeledPool pool_;
};

TEST_F(AssembleBundleTest, ProducesRequestedSizes) {
  auto bundle = AssembleBundle(pool_, BaseConfig()).ValueOrDie();
  EXPECT_EQ(bundle.train.num_labeled(), 40u);
  EXPECT_EQ(bundle.train.num_unlabeled(), 600u);
  EXPECT_EQ(bundle.validation.size(), 145u);
  EXPECT_EQ(bundle.test.size(), 215u);
  EXPECT_EQ(bundle.test.CountsByKind(), (std::vector<size_t>{150, 30, 35}));
}

TEST_F(AssembleBundleTest, ContaminationMatchesConfig) {
  auto bundle = AssembleBundle(pool_, BaseConfig()).ValueOrDie();
  size_t anomalies = 0;
  for (InstanceKind k : bundle.train.unlabeled_truth) {
    if (k != InstanceKind::kNormal) ++anomalies;
  }
  EXPECT_EQ(anomalies, 30u);  // 5% of 600.
  // Target share of contamination: 40% of 30 = 12.
  size_t targets = 0;
  for (InstanceKind k : bundle.train.unlabeled_truth) {
    if (k == InstanceKind::kTarget) ++targets;
  }
  EXPECT_EQ(targets, 12u);
}

TEST_F(AssembleBundleTest, LabeledClassesBalanced) {
  auto bundle = AssembleBundle(pool_, BaseConfig()).ValueOrDie();
  std::vector<int> counts(2, 0);
  for (int c : bundle.train.labeled_class) counts[static_cast<size_t>(c)]++;
  EXPECT_EQ(counts[0], 20);
  EXPECT_EQ(counts[1], 20);
}

TEST_F(AssembleBundleTest, DeterministicForSameSeed) {
  auto b1 = AssembleBundle(pool_, BaseConfig()).ValueOrDie();
  auto b2 = AssembleBundle(pool_, BaseConfig()).ValueOrDie();
  ASSERT_EQ(b1.train.unlabeled_x.size(), b2.train.unlabeled_x.size());
  for (size_t i = 0; i < b1.train.unlabeled_x.size(); ++i) {
    EXPECT_DOUBLE_EQ(b1.train.unlabeled_x.data()[i],
                     b2.train.unlabeled_x.data()[i]);
  }
}

TEST_F(AssembleBundleTest, DifferentSeedsDiffer) {
  AssemblyConfig other = BaseConfig();
  other.seed = 8;
  auto b1 = AssembleBundle(pool_, BaseConfig()).ValueOrDie();
  auto b2 = AssembleBundle(pool_, other).ValueOrDie();
  double diff = 0.0;
  for (size_t i = 0; i < b1.train.unlabeled_x.size(); ++i) {
    diff += std::fabs(b1.train.unlabeled_x.data()[i] -
                      b2.train.unlabeled_x.data()[i]);
  }
  EXPECT_GT(diff, 1.0);
}

TEST_F(AssembleBundleTest, NonTargetClassFilterExcludesFromTraining) {
  AssemblyConfig config = BaseConfig();
  config.train_nontarget_classes = {0};  // Class 1 becomes "new at test time".
  auto bundle = AssembleBundle(pool_, config).ValueOrDie();
  // All non-target anomalies in the unlabeled pool must be class 0. Verify
  // via the test set having both classes while training had the filter on.
  std::set<int> test_nt_classes;
  for (size_t i = 0; i < bundle.test.size(); ++i) {
    if (bundle.test.kind[i] == InstanceKind::kNonTarget) {
      test_nt_classes.insert(bundle.test.nontarget_class[i]);
    }
  }
  EXPECT_TRUE(test_nt_classes.count(1) > 0)
      << "test set must still contain the held-out non-target class";
}

TEST_F(AssembleBundleTest, FailsWhenPoolTooSmall) {
  AssemblyConfig config = BaseConfig();
  config.unlabeled_size = 100000;
  EXPECT_FALSE(AssembleBundle(pool_, config).ok());
}

TEST_F(AssembleBundleTest, FailsOnBadContamination) {
  AssemblyConfig config = BaseConfig();
  config.contamination = 1.5;
  EXPECT_FALSE(AssembleBundle(pool_, config).ok());
}

TEST_F(AssembleBundleTest, ValidatesTargetClassCount) {
  AssemblyConfig config = BaseConfig();
  config.num_target_classes = 0;
  EXPECT_FALSE(AssembleBundle(pool_, config).ok());
}

}  // namespace
}  // namespace data
}  // namespace targad
