#include <gtest/gtest.h>

#include "baselines/ecod.h"
#include "baselines/lof.h"
#include "baselines/registry.h"
#include "common/rng.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace targad {
namespace baselines {
namespace {

// A dense blob with a handful of far-away outliers, wrapped as a training
// set (labels unused by these unsupervised detectors).
struct BlobData {
  data::TrainingSet train;
  nn::Matrix test;
  std::vector<int> labels;  // 1 = outlier.
};

BlobData MakeBlobs(uint64_t seed) {
  Rng rng(seed);
  BlobData d;
  d.train.num_target_classes = 1;
  d.train.labeled_x = nn::Matrix(2, 3, 0.95);  // Dummy labels for Validate().
  d.train.labeled_class = {0, 0};
  d.train.unlabeled_x = nn::Matrix(400, 3);
  for (size_t i = 0; i < 400; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      d.train.unlabeled_x.At(i, j) = rng.Normal(0.4, 0.05);
    }
  }
  d.test = nn::Matrix(120, 3);
  for (size_t i = 0; i < 120; ++i) {
    const bool outlier = i < 20;
    d.labels.push_back(outlier ? 1 : 0);
    for (size_t j = 0; j < 3; ++j) {
      d.test.At(i, j) =
          outlier ? rng.Uniform(0.8, 1.0) : rng.Normal(0.4, 0.05);
    }
  }
  return d;
}

TEST(LofTest, MakeValidatesConfig) {
  LofConfig config;
  config.k = 0;
  EXPECT_FALSE(Lof::Make(config).ok());
  config = LofConfig{};
  config.max_reference = config.k;
  EXPECT_FALSE(Lof::Make(config).ok());
}

TEST(LofTest, SeparatesDensityOutliers) {
  BlobData d = MakeBlobs(1);
  auto lof = Lof::Make({}).ValueOrDie();
  ASSERT_TRUE(lof->Fit(d.train).ok());
  const auto scores = lof->Score(d.test);
  EXPECT_GT(eval::Auroc(scores, d.labels).ValueOrDie(), 0.95);
}

TEST(LofTest, InliersScoreNearOne) {
  BlobData d = MakeBlobs(2);
  auto lof = Lof::Make({}).ValueOrDie();
  ASSERT_TRUE(lof->Fit(d.train).ok());
  const auto scores = lof->Score(d.train.unlabeled_x);
  double mean = 0.0;
  for (double s : scores) mean += s;
  mean /= static_cast<double>(scores.size());
  EXPECT_NEAR(mean, 1.0, 0.2);
}

TEST(LofTest, RejectsTooSmallPool) {
  data::TrainingSet train;
  train.num_target_classes = 1;
  train.labeled_x = nn::Matrix(1, 2, 0.5);
  train.labeled_class = {0};
  train.unlabeled_x = nn::Matrix(5, 2, 0.5);  // Pool <= k.
  auto lof = Lof::Make({}).ValueOrDie();
  EXPECT_FALSE(lof->Fit(train).ok());
}

TEST(LofTest, SubsamplesLargeReference) {
  BlobData d = MakeBlobs(3);
  LofConfig config;
  config.max_reference = 128;  // Force subsampling.
  auto lof = Lof::Make(config).ValueOrDie();
  ASSERT_TRUE(lof->Fit(d.train).ok());
  const auto scores = lof->Score(d.test);
  EXPECT_GT(eval::Auroc(scores, d.labels).ValueOrDie(), 0.9);
}

TEST(EcodTest, SeparatesTailOutliers) {
  BlobData d = MakeBlobs(4);
  auto ecod = Ecod::Make().ValueOrDie();
  ASSERT_TRUE(ecod->Fit(d.train).ok());
  const auto scores = ecod->Score(d.test);
  EXPECT_GT(eval::Auroc(scores, d.labels).ValueOrDie(), 0.95);
}

TEST(EcodTest, ExtremeValuesScoreHigherThanCentralOnes) {
  BlobData d = MakeBlobs(5);
  auto ecod = Ecod::Make().ValueOrDie();
  ASSERT_TRUE(ecod->Fit(d.train).ok());
  nn::Matrix probes(2, 3);
  for (size_t j = 0; j < 3; ++j) {
    probes.At(0, j) = 0.4;  // Central.
    probes.At(1, j) = 5.0;  // Far beyond the training range.
  }
  const auto scores = ecod->Score(probes);
  EXPECT_GT(scores[1], scores[0]);
}

TEST(EcodTest, DeterministicAndParameterFree) {
  BlobData d = MakeBlobs(6);
  auto e1 = Ecod::Make().ValueOrDie();
  auto e2 = Ecod::Make().ValueOrDie();
  ASSERT_TRUE(e1->Fit(d.train).ok());
  ASSERT_TRUE(e2->Fit(d.train).ok());
  const auto s1 = e1->Score(d.test);
  const auto s2 = e2->Score(d.test);
  for (size_t i = 0; i < s1.size(); ++i) EXPECT_DOUBLE_EQ(s1[i], s2[i]);
}

TEST(EcodTest, RejectsDegenerateFit) {
  data::TrainingSet train;
  train.num_target_classes = 1;
  train.labeled_x = nn::Matrix(1, 2, 0.5);
  train.labeled_class = {0};
  train.unlabeled_x = nn::Matrix(1, 2, 0.5);
  auto ecod = Ecod::Make().ValueOrDie();
  EXPECT_FALSE(ecod->Fit(train).ok());
}

TEST(ExtendedRegistryTest, LofAndEcodResolve) {
  const auto names = ExtendedDetectorNames();
  EXPECT_EQ(names.size(), 14u);
  for (const char* name : {"LOF", "ECOD"}) {
    auto detector = MakeDetector(name, 1);
    ASSERT_TRUE(detector.ok()) << name;
    EXPECT_EQ((*detector)->name(), name);
  }
}

TEST(ExtendedRegistryTest, ExtensionsRunOnTinyBundle) {
  const data::DatasetBundle bundle = targad::testing::TinyBundle(41);
  const auto labels = bundle.test.BinaryTargetLabels();
  for (const char* name : {"LOF", "ECOD"}) {
    auto detector = MakeDetector(name, 2).ValueOrDie();
    ASSERT_TRUE(detector->Fit(bundle.train).ok()) << name;
    const auto scores = detector->Score(bundle.test.x);
    ASSERT_EQ(scores.size(), bundle.test.size());
    // Unsupervised detectors flag ALL anomalies, so measure anomaly-vs-
    // normal ranking rather than target ranking.
    std::vector<int> anomaly_labels;
    for (auto kind : bundle.test.kind) {
      anomaly_labels.push_back(kind == data::InstanceKind::kNormal ? 0 : 1);
    }
    EXPECT_GT(eval::Auroc(scores, anomaly_labels).ValueOrDie(), 0.6) << name;
  }
}

}  // namespace
}  // namespace baselines
}  // namespace targad
