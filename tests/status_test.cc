#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace targad {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("k must be positive, got ", -3);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "k must be positive, got -3");
  EXPECT_EQ(st.ToString(), "InvalidArgument: k must be positive, got -3");
}

TEST(StatusTest, ConcatenatesMixedArgumentTypes) {
  Status st = Status::IOError("file ", std::string("x.csv"), " line ", 12UL,
                              " char ", 'c');
  EXPECT_EQ(st.message(), "file x.csv line 12 char c");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotImplemented), "NotImplemented");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IOError("x"));
}

Status FailsWhenNegative(int v) {
  if (v < 0) return Status::OutOfRange("v = ", v);
  return Status::OK();
}

Status Chained(int v) {
  TARGAD_RETURN_NOT_OK(FailsWhenNegative(v));
  return Status::Internal("should be reached only for non-negative v");
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_EQ(Chained(-1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Chained(1).code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

Result<int> HalfOf(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> QuarterOf(int v) {
  TARGAD_ASSIGN_OR_RETURN(int half, HalfOf(v));
  return HalfOf(half);
}

TEST(ResultTest, AssignOrReturnChains) {
  ASSERT_TRUE(QuarterOf(8).ok());
  EXPECT_EQ(QuarterOf(8).ValueOrDie(), 2);
  EXPECT_FALSE(QuarterOf(6).ok());  // 6/2 = 3 is odd.
  EXPECT_FALSE(QuarterOf(3).ok());
}

TEST(ResultDeathTest, ValueOrDieOnErrorAborts) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH({ (void)r.ValueOrDie(); }, "boom");
}

}  // namespace
}  // namespace targad
