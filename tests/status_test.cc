#include "common/status.h"

#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/result.h"

namespace targad {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("k must be positive, got ", -3);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "k must be positive, got -3");
  EXPECT_EQ(st.ToString(), "InvalidArgument: k must be positive, got -3");
}

TEST(StatusTest, ConcatenatesMixedArgumentTypes) {
  Status st = Status::IOError("file ", std::string("x.csv"), " line ", 12UL,
                              " char ", 'c');
  EXPECT_EQ(st.message(), "file x.csv line 12 char c");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotImplemented), "NotImplemented");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IOError("x"));
}

Status FailsWhenNegative(int v) {
  if (v < 0) return Status::OutOfRange("v = ", v);
  return Status::OK();
}

Status Chained(int v) {
  TARGAD_RETURN_NOT_OK(FailsWhenNegative(v));
  return Status::Internal("should be reached only for non-negative v");
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_EQ(Chained(-1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Chained(1).code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

Result<int> HalfOf(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> QuarterOf(int v) {
  TARGAD_ASSIGN_OR_RETURN(int half, HalfOf(v));
  return HalfOf(half);
}

TEST(ResultTest, AssignOrReturnChains) {
  ASSERT_TRUE(QuarterOf(8).ok());
  EXPECT_EQ(QuarterOf(8).ValueOrDie(), 2);
  EXPECT_FALSE(QuarterOf(6).ok());  // 6/2 = 3 is odd.
  EXPECT_FALSE(QuarterOf(3).ok());
}

TEST(ResultDeathTest, ValueOrDieOnErrorAborts) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH({ (void)r.ValueOrDie(); }, "boom");
}

// ---- Move semantics -------------------------------------------------------

TEST(StatusTest, MoveConstructPreservesCodeAndMessage) {
  Status src = Status::NotFound("model 'shadow' is not registered");
  Status dst = std::move(src);
  EXPECT_EQ(dst.code(), StatusCode::kNotFound);
  EXPECT_EQ(dst.message(), "model 'shadow' is not registered");
}

TEST(StatusTest, MoveAssignPreservesCodeAndMessage) {
  Status dst = Status::OK();
  Status src = Status::IOError("disk full");
  dst = std::move(src);
  EXPECT_FALSE(dst.ok());
  EXPECT_EQ(dst.code(), StatusCode::kIOError);
  EXPECT_EQ(dst.message(), "disk full");
}

TEST(StatusTest, MovedFromStatusIsAssignable) {
  Status src = Status::Internal("x");
  Status dst = std::move(src);
  (void)dst;
  src = Status::InvalidArgument("reused");  // Valid-but-unspecified -> reuse.
  EXPECT_EQ(src.code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveConstructCarriesValue) {
  Result<std::string> src(std::string(1000, 'x'));
  Result<std::string> dst = std::move(src);
  ASSERT_TRUE(dst.ok());
  EXPECT_EQ(dst.ValueOrDie().size(), 1000u);
}

TEST(ResultTest, MoveConstructCarriesError) {
  Result<std::string> src(Status::OutOfRange("row 7"));
  Result<std::string> dst = std::move(src);
  ASSERT_FALSE(dst.ok());
  EXPECT_EQ(dst.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(dst.status().message(), "row 7");
}

TEST(ResultTest, MoveAssignSwitchesBetweenValueAndError) {
  Result<std::string> r(std::string("value"));
  r = Result<std::string>(Status::Internal("swapped to error"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  r = Result<std::string>(std::string("back to value"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "back to value");
}

TEST(ResultTest, RvalueValueOrDieMovesOutTheValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3}));
}

// The [[nodiscard]] surface itself is enforced by a negative-compilation
// harness (tests/nodiscard_compile_test.sh, ctest case
// nodiscard_enforcement): snippets discarding a returned Status/Result must
// FAIL to compile under -Werror=unused-result. What can be checked in-process
// is the type-trait surface the error model promises:
static_assert(std::is_move_constructible_v<Status>);
static_assert(std::is_move_assignable_v<Status>);
static_assert(std::is_nothrow_move_constructible_v<Status>);
static_assert(std::is_copy_constructible_v<Status>);
static_assert(std::is_move_constructible_v<Result<int>>);
static_assert(std::is_move_assignable_v<Result<int>>);
static_assert(std::is_move_constructible_v<Result<std::unique_ptr<int>>>);
static_assert(!std::is_copy_constructible_v<Result<std::unique_ptr<int>>>);
static_assert(std::is_convertible_v<Status, Result<int>>,
              "a Status must implicitly convert into any Result (error path)");
static_assert(std::is_convertible_v<int, Result<int>>,
              "a value must implicitly convert into its Result (ok path)");

}  // namespace
}  // namespace targad
