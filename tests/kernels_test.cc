// Golden-parity suite for the dense kernel layer: every primitive is checked
// against a naive reference over a shape sweep (empty, 1xN, non-multiples of
// the SIMD tile), on every backend available in this build, and with thread
// tiling forced on. Runs under check-asan/check-ubsan (full suite) and, via
// the "serve" label, under check-tsan, which exercises the pool tiling path.

#include "nn/kernels/kernels.h"

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace targad {
namespace nn {
namespace kernels {
namespace {

// Naive references with the same accumulation orders as the scalar kernels,
// so scalar results (and double on any backend) must match EXACTLY; the
// AVX2 float results are held to a relative tolerance.

template <typename T>
std::vector<T> RefGemm(Trans ta, Trans tb, size_t m, size_t n, size_t k,
                       const std::vector<T>& a, const std::vector<T>& b) {
  std::vector<T> c(m * n, T(0));
  auto a_at = [&](size_t i, size_t kk) {
    return ta == Trans::kNo ? a[i * k + kk] : a[kk * m + i];
  };
  auto b_at = [&](size_t kk, size_t j) {
    return tb == Trans::kNo ? b[kk * n + j] : b[j * k + kk];
  };
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      T acc = T(0);
      for (size_t kk = 0; kk < k; ++kk) acc += a_at(i, kk) * b_at(kk, j);
      c[i * n + j] = acc;
    }
  }
  return c;
}

template <typename T>
T RefAct(Act act, T slope, T v) {
  switch (act) {
    case Act::kNone: return v;
    case Act::kReLU: return v <= T(0) ? T(0) : v;
    case Act::kLeakyReLU: return v < T(0) ? v * slope : v;
    case Act::kSigmoid: {
      if (v >= T(0)) return T(1) / (T(1) + std::exp(-v));
      const T e = std::exp(v);
      return e / (T(1) + e);
    }
    case Act::kTanh: return std::tanh(v);
  }
  return v;
}

template <typename T>
std::vector<T> FillRandom(size_t count, Rng* rng, double sparsity = 0.0) {
  std::vector<T> out(count);
  for (T& v : out) {
    v = (sparsity > 0.0 && rng->Bernoulli(sparsity))
            ? T(0)
            : static_cast<T>(rng->Normal(0.0, 1.0));
  }
  return out;
}

// Shapes chosen to straddle the AVX2 register blocking (4 rows x 16 cols,
// then 8-wide and scalar tails) and the empty/degenerate edges.
struct Shape {
  size_t m, n, k;
};
const Shape kShapes[] = {{0, 0, 0}, {0, 5, 3},  {1, 1, 1},   {1, 16, 8},
                         {1, 17, 3}, {3, 7, 5},  {4, 16, 16}, {5, 8, 2},
                         {7, 19, 11}, {8, 32, 4}, {13, 33, 17}, {16, 64, 24}};

// Value-parameterized over the backends available in this build; restores
// the dispatch state after each test.
class KernelsBackendTest : public ::testing::TestWithParam<Backend> {
 public:
  void SetUp() override {
    saved_backend_ = ActiveBackend();
    saved_tiling_ = Tiling();
    if (!SetBackendForTest(GetParam())) {
      GTEST_SKIP() << "backend " << BackendName(GetParam())
                   << " not available in this build/CPU";
    }
  }
  void TearDown() override {
    SetBackendForTest(saved_backend_);
    SetTilingForTest(saved_tiling_);
  }
  // Exact for scalar (same accumulation order as the reference); relative
  // tolerance for AVX2 float whose FMA/lane order differs.
  template <typename T>
  void ExpectClose(const std::vector<T>& expected,
                   const std::vector<T>& actual) {
    ASSERT_EQ(expected.size(), actual.size());
    const bool exact =
        GetParam() == Backend::kScalar || std::is_same_v<T, double>;
    for (size_t i = 0; i < expected.size(); ++i) {
      if (exact) {
        EXPECT_EQ(expected[i], actual[i]) << "index " << i;
      } else {
        const double tol =
            1e-5 * std::max(1.0, std::abs(static_cast<double>(expected[i])));
        EXPECT_NEAR(expected[i], actual[i], tol) << "index " << i;
      }
    }
  }

 private:
  Backend saved_backend_ = Backend::kScalar;
  TilingConfig saved_tiling_;
};

template <typename T>
void RunGemmSweep(KernelsBackendTest* fixture) {
  Rng rng(17);
  for (const Shape& s : kShapes) {
    for (Trans ta : {Trans::kNo, Trans::kYes}) {
      for (Trans tb : {Trans::kNo, Trans::kYes}) {
        const auto a = FillRandom<T>(s.m * s.k, &rng, /*sparsity=*/0.3);
        const auto b = FillRandom<T>(s.k * s.n, &rng);
        std::vector<T> c(s.m * s.n, T(-1));
        Gemm<T>(ta, tb, s.m, s.n, s.k, a.data(), b.data(), c.data());
        const auto expected = RefGemm<T>(ta, tb, s.m, s.n, s.k, a, b);
        SCOPED_TRACE(::testing::Message()
                     << "m=" << s.m << " n=" << s.n << " k=" << s.k << " ta="
                     << (ta == Trans::kYes) << " tb=" << (tb == Trans::kYes));
        fixture->ExpectClose(expected, c);
      }
    }
  }
}

using KernelsSweepTest = KernelsBackendTest;

TEST_P(KernelsSweepTest, GemmMatchesReferenceAcrossShapes) {
  RunGemmSweep<float>(this);
  RunGemmSweep<double>(this);
}

TEST_P(KernelsSweepTest, GemmMatchesReferenceWithForcedTiling) {
  TilingConfig tiling;
  tiling.threads = 4;
  tiling.min_flops = 1;  // Tile everything with >= 2 rows.
  tiling.min_rows_per_tile = 1;
  SetTilingForTest(tiling);
  RunGemmSweep<float>(this);
  RunGemmSweep<double>(this);
}

template <typename T>
void RunAffineSweep(KernelsSweepTest* fixture) {
  Rng rng(23);
  const Act kActs[] = {Act::kNone, Act::kReLU, Act::kLeakyReLU, Act::kSigmoid,
                       Act::kTanh};
  for (const Shape& s : kShapes) {
    for (Act act : kActs) {
      for (bool with_bias : {false, true}) {
        const auto x = FillRandom<T>(s.m * s.k, &rng);
        const auto w = FillRandom<T>(s.k * s.n, &rng);
        const auto bias = FillRandom<T>(s.n, &rng);
        const T slope = T(0.01);
        std::vector<T> y(s.m * s.n, T(-1));
        FusedAffineActivation<T>(s.m, s.n, s.k, x.data(), w.data(),
                                 with_bias ? bias.data() : nullptr, act, slope,
                                 y.data());
        auto expected = RefGemm<T>(Trans::kNo, Trans::kNo, s.m, s.n, s.k, x, w);
        for (size_t i = 0; i < s.m; ++i) {
          for (size_t j = 0; j < s.n; ++j) {
            T v = expected[i * s.n + j];
            if (with_bias) v += bias[j];
            expected[i * s.n + j] = RefAct(act, slope, v);
          }
        }
        SCOPED_TRACE(::testing::Message()
                     << "m=" << s.m << " n=" << s.n << " k=" << s.k
                     << " act=" << static_cast<int>(act)
                     << " bias=" << with_bias);
        fixture->ExpectClose(expected, y);
      }
    }
  }
}

TEST_P(KernelsSweepTest, FusedAffineActivationMatchesReference) {
  RunAffineSweep<float>(this);
  RunAffineSweep<double>(this);
}

TEST_P(KernelsSweepTest, FusedAffineActivationMatchesReferenceTiled) {
  TilingConfig tiling;
  tiling.threads = 4;
  tiling.min_flops = 1;
  tiling.min_rows_per_tile = 1;
  SetTilingForTest(tiling);
  RunAffineSweep<float>(this);
  RunAffineSweep<double>(this);
}

template <typename T>
void RunVectorOps(KernelsSweepTest* fixture) {
  Rng rng(31);
  for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                   size_t{64}, size_t{100}}) {
    const auto x = FillRandom<T>(n, &rng);
    auto y = FillRandom<T>(n, &rng);
    const T alpha = static_cast<T>(rng.Normal(0.0, 1.0));

    auto expected = y;
    for (size_t i = 0; i < n; ++i) expected[i] += alpha * x[i];
    auto actual = y;
    Axpy<T>(n, alpha, x.data(), actual.data());
    fixture->ExpectClose(expected, actual);

    expected = y;
    for (size_t i = 0; i < n; ++i) expected[i] *= alpha;
    actual = y;
    Scale<T>(n, alpha, actual.data());
    fixture->ExpectClose(expected, actual);

    expected = y;
    for (size_t i = 0; i < n; ++i) expected[i] *= x[i];
    actual = y;
    Hadamard<T>(n, x.data(), actual.data());
    fixture->ExpectClose(expected, actual);

    T dot_ref = T(0);
    for (size_t i = 0; i < n; ++i) dot_ref += x[i] * y[i];
    fixture->ExpectClose(std::vector<T>{dot_ref},
                         std::vector<T>{Dot<T>(n, x.data(), y.data())});
  }
}

TEST_P(KernelsSweepTest, VectorOpsMatchReference) {
  RunVectorOps<float>(this);
  RunVectorOps<double>(this);
}

template <typename T>
void RunSquaredDistances(KernelsSweepTest* fixture) {
  Rng rng(41);
  for (const Shape& s : kShapes) {
    const size_t n = s.m, d = s.k, k = s.n;
    const auto x = FillRandom<T>(n * d, &rng);
    const auto centers = FillRandom<T>(k * d, &rng);
    auto weights = FillRandom<T>(k * d, &rng);
    for (T& w : weights) w = std::abs(w) + T(0.5);

    for (bool weighted : {false, true}) {
      std::vector<T> expected(n * k, T(0));
      for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < k; ++c) {
          T acc = T(0);
          for (size_t j = 0; j < d; ++j) {
            const T diff = x[i * d + j] - centers[c * d + j];
            acc += weighted ? diff * diff * weights[c * d + j] : diff * diff;
          }
          expected[i * k + c] = acc;
        }
      }
      std::vector<T> actual(n * k, T(-1));
      SquaredDistances<T>(n, d, k, x.data(), centers.data(),
                          weighted ? weights.data() : nullptr, actual.data());
      SCOPED_TRACE(::testing::Message() << "n=" << n << " d=" << d << " k=" << k
                                        << " weighted=" << weighted);
      fixture->ExpectClose(expected, actual);

      // The pairwise entry point must agree with the batched one exactly.
      for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < k; ++c) {
          const T pair = SquaredDistance<T>(
              d, x.data() + i * d, centers.data() + c * d,
              weighted ? weights.data() + c * d : nullptr);
          if (fixture->GetParam() == Backend::kScalar ||
              std::is_same_v<T, double>) {
            EXPECT_EQ(pair, actual[i * k + c]);
          } else {
            EXPECT_NEAR(pair, actual[i * k + c],
                        1e-5 * std::max(1.0, std::abs(double(pair))));
          }
        }
      }
    }
  }
}

TEST_P(KernelsSweepTest, SquaredDistancesMatchReference) {
  RunSquaredDistances<float>(this);
  RunSquaredDistances<double>(this);
}

TEST_P(KernelsSweepTest, ReductionsMatchReference) {
  Rng rng(53);
  for (const Shape& s : kShapes) {
    const auto a = FillRandom<double>(s.m * s.n, &rng);
    std::vector<double> row_sum(s.m), row_sq(s.m), row_max(s.m);
    RowReduce<double>(RowReduceOp::kSum, s.m, s.n, a.data(), row_sum.data());
    RowReduce<double>(RowReduceOp::kSquaredNorm, s.m, s.n, a.data(),
                      row_sq.data());
    if (s.n > 0) {
      RowReduce<double>(RowReduceOp::kMax, s.m, s.n, a.data(), row_max.data());
    }
    std::vector<double> col_sum(s.n);
    ColReduceSum<double>(s.m, s.n, a.data(), col_sum.data());

    std::vector<double> want_col(s.n, 0.0);
    for (size_t i = 0; i < s.m; ++i) {
      double sum = 0.0, sq = 0.0, mx = s.n > 0 ? a[i * s.n] : 0.0;
      for (size_t j = 0; j < s.n; ++j) {
        const double v = a[i * s.n + j];
        sum += v;
        sq += v * v;
        mx = std::max(mx, v);
        want_col[j] += v;
      }
      EXPECT_EQ(sum, row_sum[i]);
      EXPECT_EQ(sq, row_sq[i]);
      if (s.n > 0) {
        EXPECT_EQ(mx, row_max[i]);
      }
    }
    for (size_t j = 0; j < s.n; ++j) EXPECT_EQ(want_col[j], col_sum[j]);

    double total = 0.0;
    for (const double v : a) total += v;
    EXPECT_EQ(total, ReduceSum<double>(a.size(), a.data()));
  }
}

template <typename T>
void RunActivationBackward(KernelsSweepTest* fixture) {
  Rng rng(67);
  const Act kActs[] = {Act::kNone, Act::kReLU, Act::kLeakyReLU, Act::kSigmoid,
                       Act::kTanh};
  const T slope = T(0.01);
  for (size_t n : {size_t{0}, size_t{1}, size_t{9}, size_t{64}}) {
    for (Act act : kActs) {
      const auto ref = FillRandom<T>(n, &rng);
      const auto g0 = FillRandom<T>(n, &rng);
      auto expected = g0;
      for (size_t i = 0; i < n; ++i) {
        switch (act) {
          case Act::kNone: break;
          case Act::kReLU: expected[i] *= ref[i] > T(0) ? T(1) : T(0); break;
          case Act::kLeakyReLU:
            if (ref[i] < T(0)) expected[i] *= slope;
            break;
          case Act::kSigmoid: expected[i] *= ref[i] * (T(1) - ref[i]); break;
          case Act::kTanh: expected[i] *= T(1) - ref[i] * ref[i]; break;
        }
      }
      auto actual = g0;
      ActivationBackward<T>(act, slope, n, ref.data(), actual.data());
      SCOPED_TRACE(::testing::Message()
                   << "n=" << n << " act=" << static_cast<int>(act));
      fixture->ExpectClose(expected, actual);
    }
  }
}

TEST_P(KernelsSweepTest, ActivationBackwardMatchesReference) {
  RunActivationBackward<float>(this);
  RunActivationBackward<double>(this);
}

TEST_P(KernelsSweepTest, ScaledDiffMatchesReference) {
  Rng rng(71);
  for (size_t n : {size_t{0}, size_t{5}, size_t{33}}) {
    const auto a = FillRandom<double>(n, &rng);
    const auto b = FillRandom<double>(n, &rng);
    const double alpha = rng.Normal(0.0, 2.0);
    std::vector<double> expected(n), actual(n);
    for (size_t i = 0; i < n; ++i) expected[i] = alpha * (a[i] - b[i]);
    ScaledDiff<double>(n, alpha, a.data(), b.data(), actual.data());
    ExpectClose(expected, actual);
  }
}

// The optimizer kernels must reproduce the historical update loops
// expression-for-expression; the references below are those loops verbatim.
TEST_P(KernelsSweepTest, AdamUpdateMatchesReferenceLoop) {
  Rng rng(73);
  const size_t n = 37;
  const double lr = 0.01, beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  auto g = FillRandom<double>(n, &rng);
  auto m = FillRandom<double>(n, &rng);
  auto v = FillRandom<double>(n, &rng);
  for (double& x : v) x = std::abs(x);
  auto p = FillRandom<double>(n, &rng);
  for (int t = 1; t <= 3; ++t) {
    const double bc1 = 1.0 - std::pow(beta1, t);
    const double bc2 = 1.0 - std::pow(beta2, t);
    auto em = m, ev = v, ep = p;
    for (size_t j = 0; j < n; ++j) {
      em[j] = beta1 * em[j] + (1.0 - beta1) * g[j];
      ev[j] = beta2 * ev[j] + (1.0 - beta2) * g[j] * g[j];
      const double m_hat = em[j] / bc1;
      const double v_hat = ev[j] / bc2;
      ep[j] -= lr * m_hat / (std::sqrt(v_hat) + eps);
    }
    AdamUpdate<double>(n, lr, beta1, beta2, eps, bc1, bc2, g.data(), m.data(),
                       v.data(), p.data());
    // Bitwise equality, not closeness: the fused kernel must round exactly
    // as the historical loop did.
    for (size_t j = 0; j < n; ++j) {
      EXPECT_EQ(em[j], m[j]);
      EXPECT_EQ(ev[j], v[j]);
      EXPECT_EQ(ep[j], p[j]);
    }
  }
}

TEST_P(KernelsSweepTest, SgdMomentumUpdateMatchesReferenceLoop) {
  Rng rng(79);
  const size_t n = 29;
  const double lr = 0.05, momentum = 0.9;
  const auto g = FillRandom<double>(n, &rng);
  auto v = FillRandom<double>(n, &rng);
  auto p = FillRandom<double>(n, &rng);
  auto ev = v, ep = p;
  for (size_t j = 0; j < n; ++j) {
    ev[j] = momentum * ev[j] + g[j];
    ep[j] -= lr * ev[j];
  }
  SgdMomentumUpdate<double>(n, lr, momentum, g.data(), v.data(), p.data());
  for (size_t j = 0; j < n; ++j) {
    EXPECT_EQ(ev[j], v[j]);
    EXPECT_EQ(ep[j], p[j]);
  }
}

TEST_P(KernelsSweepTest, RowwiseSquaredDistancesMatchesReference) {
  Rng rng(83);
  TilingConfig tiling;
  tiling.threads = 4;
  tiling.min_flops = 1;
  tiling.min_rows_per_tile = 1;
  SetTilingForTest(tiling);
  for (const Shape& s : kShapes) {
    const auto a = FillRandom<double>(s.m * s.n, &rng);
    const auto b = FillRandom<double>(s.m * s.n, &rng);
    std::vector<double> expected(s.m), actual(s.m, -1.0);
    for (size_t i = 0; i < s.m; ++i) {
      double acc = 0.0;
      for (size_t j = 0; j < s.n; ++j) {
        const double d = a[i * s.n + j] - b[i * s.n + j];
        acc += d * d;
      }
      expected[i] = acc;
    }
    RowwiseSquaredDistances<double>(s.m, s.n, a.data(), b.data(),
                                    actual.data());
    SCOPED_TRACE(::testing::Message() << "m=" << s.m << " n=" << s.n);
    ExpectClose(expected, actual);
  }
}

TEST_P(KernelsSweepTest, MseLossGradMatchesReferenceLoop) {
  Rng rng(89);
  for (const Shape& s : kShapes) {
    if (s.m == 0) continue;
    const size_t n = s.m * s.n;
    const auto pred = FillRandom<double>(n, &rng);
    const auto target = FillRandom<double>(n, &rng);
    const double inv_n = 1.0 / static_cast<double>(s.m);
    std::vector<double> egrad(n), agrad(n);
    double etotal = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = pred[i] - target[i];
      etotal += d * d;
      egrad[i] = 2.0 * d * inv_n;
    }
    const double atotal = MseLossGrad<double>(n, pred.data(), target.data(),
                                              inv_n, agrad.data());
    EXPECT_EQ(etotal, atotal);
    ExpectClose(egrad, agrad);
  }
}

// Double must take the scalar path on EVERY backend — that is the training
// bit-determinism contract.
TEST_P(KernelsSweepTest, DoubleIsBackendInvariant) {
  Rng rng(61);
  const size_t m = 9, n = 21, k = 13;
  const auto a = FillRandom<double>(m * k, &rng, 0.3);
  const auto b = FillRandom<double>(k * n, &rng);
  std::vector<double> c(m * n);
  Gemm<double>(Trans::kNo, Trans::kNo, m, n, k, a.data(), b.data(), c.data());

  TilingConfig save = Tiling();
  ASSERT_TRUE(SetBackendForTest(Backend::kScalar));
  SetTilingForTest(TilingConfig{});  // Single-threaded.
  std::vector<double> c_scalar(m * n);
  Gemm<double>(Trans::kNo, Trans::kNo, m, n, k, a.data(), b.data(),
               c_scalar.data());
  SetTilingForTest(save);
  EXPECT_EQ(c, c_scalar);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, KernelsSweepTest,
                         ::testing::Values(Backend::kScalar, Backend::kAvx2),
                         [](const auto& info) {
                           return std::string(BackendName(info.param));
                         });

TEST(KernelsDispatchTest, BackendNameIsConsistent) {
  const Backend b = ActiveBackend();
  EXPECT_TRUE(b == Backend::kScalar || b == Backend::kAvx2);
  EXPECT_STREQ(BackendName(), BackendName(b));
  EXPECT_GE(Tiling().threads, size_t{1});
}

}  // namespace
}  // namespace kernels
}  // namespace nn
}  // namespace targad
