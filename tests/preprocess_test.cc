#include "data/preprocess.h"

#include <gtest/gtest.h>

namespace targad {
namespace data {
namespace {

TEST(MinMaxTest, MapsToUnitInterval) {
  nn::Matrix x(3, 2, {0.0, 10.0, 5.0, 20.0, 10.0, 30.0});
  MinMaxNormalizer norm;
  auto out = norm.FitTransform(x).ValueOrDie();
  EXPECT_DOUBLE_EQ(out.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.At(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(out.At(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(out.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(out.At(2, 1), 1.0);
}

TEST(MinMaxTest, ConstantColumnMapsToZero) {
  nn::Matrix x(2, 1, {7.0, 7.0});
  MinMaxNormalizer norm;
  auto out = norm.FitTransform(x).ValueOrDie();
  EXPECT_DOUBLE_EQ(out.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.At(1, 0), 0.0);
}

TEST(MinMaxTest, TransformClampsUnseenRange) {
  nn::Matrix train(2, 1, {0.0, 10.0});
  MinMaxNormalizer norm;
  ASSERT_TRUE(norm.Fit(train).ok());
  nn::Matrix test(2, 1, {-5.0, 20.0});
  auto out = norm.Transform(test).ValueOrDie();
  EXPECT_DOUBLE_EQ(out.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.At(1, 0), 1.0);
}

TEST(MinMaxTest, UsageErrors) {
  MinMaxNormalizer norm;
  EXPECT_EQ(norm.Transform(nn::Matrix(1, 1)).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(norm.Fit(nn::Matrix(0, 3)).ok());
  nn::Matrix train(2, 2, 0.5);
  ASSERT_TRUE(norm.Fit(train).ok());
  EXPECT_FALSE(norm.Transform(nn::Matrix(1, 3)).ok());
}

RawTable MixedTable() {
  RawTable t;
  t.column_names = {"amount", "proto"};
  t.rows = {{"1.5", "tcp"}, {"2.0", "udp"}, {"0.5", "tcp"}};
  return t;
}

TEST(OneHotTest, ExpandsCategoricalColumns) {
  OneHotEncoder enc;
  auto out = enc.FitTransform(MixedTable()).ValueOrDie();
  // 1 numeric + 2 categories = 3 output columns.
  ASSERT_EQ(out.cols(), 3u);
  EXPECT_DOUBLE_EQ(out.At(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(out.At(0, 1), 1.0);  // tcp
  EXPECT_DOUBLE_EQ(out.At(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(out.At(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(out.At(1, 2), 1.0);  // udp
}

TEST(OneHotTest, FeatureNamesDescribeExpansion) {
  OneHotEncoder enc;
  ASSERT_TRUE(enc.Fit(MixedTable()).ok());
  EXPECT_EQ(enc.FeatureNames(),
            (std::vector<std::string>{"amount", "proto=tcp", "proto=udp"}));
}

TEST(OneHotTest, UnseenCategoryEncodesAllZeros) {
  OneHotEncoder enc;
  ASSERT_TRUE(enc.Fit(MixedTable()).ok());
  RawTable test;
  test.column_names = {"amount", "proto"};
  test.rows = {{"3.0", "icmp"}};
  auto out = enc.Transform(test).ValueOrDie();
  EXPECT_DOUBLE_EQ(out.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(out.At(0, 2), 0.0);
}

TEST(OneHotTest, AllNumericTablePassesThrough) {
  RawTable t;
  t.column_names = {"x", "y"};
  t.rows = {{"1", "2"}, {"3", "4"}};
  OneHotEncoder enc;
  auto out = enc.FitTransform(t).ValueOrDie();
  EXPECT_EQ(out.cols(), 2u);
  EXPECT_DOUBLE_EQ(out.At(1, 1), 4.0);
}

TEST(OneHotTest, NumericColumnWithBadCellAtTransformFails) {
  RawTable t;
  t.column_names = {"x"};
  t.rows = {{"1"}};
  OneHotEncoder enc;
  ASSERT_TRUE(enc.Fit(t).ok());
  RawTable bad;
  bad.column_names = {"x"};
  bad.rows = {{"oops"}};
  EXPECT_FALSE(enc.Transform(bad).ok());
}

TEST(OneHotTest, ColumnCountMismatchFails) {
  OneHotEncoder enc;
  ASSERT_TRUE(enc.Fit(MixedTable()).ok());
  RawTable t;
  t.column_names = {"amount"};
  t.rows = {{"1.0"}};
  EXPECT_FALSE(enc.Transform(t).ok());
}

TEST(DeduplicateColumnsTest, DropsExactDuplicates) {
  // Columns 0 and 2 identical; 1 and 3 distinct.
  nn::Matrix x(2, 4, {1.0, 2.0, 1.0, 4.0, 5.0, 6.0, 5.0, 8.0});
  nn::Matrix out;
  const auto kept = DeduplicateColumns(x, &out);
  EXPECT_EQ(kept, (std::vector<size_t>{0, 1, 3}));
  ASSERT_EQ(out.cols(), 3u);
  EXPECT_DOUBLE_EQ(out.At(1, 2), 8.0);
}

TEST(DeduplicateColumnsTest, NoDuplicatesKeepsAll) {
  nn::Matrix x(1, 3, {1.0, 2.0, 3.0});
  const auto kept = DeduplicateColumns(x, nullptr);
  EXPECT_EQ(kept.size(), 3u);
}

}  // namespace
}  // namespace data
}  // namespace targad
