#include "core/weighting.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/losses.h"

namespace targad {
namespace core {
namespace {

TEST(MinMaxFlipTest, ExtremesMapToZeroAndOne) {
  const auto w = MinMaxFlipWeights({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(w[0], 0.0);  // Max value -> weight 0.
  EXPECT_DOUBLE_EQ(w[1], 1.0);  // Min value -> weight 1.
  EXPECT_DOUBLE_EQ(w[2], 0.5);
}

TEST(MinMaxFlipTest, AllWeightsInUnitInterval) {
  Rng rng(1);
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(rng.Normal(0.0, 10.0));
  const auto w = MinMaxFlipWeights(values);
  for (double v : w) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(MinMaxFlipTest, OrderIsReversed) {
  Rng rng(2);
  std::vector<double> values;
  for (int i = 0; i < 50; ++i) values.push_back(rng.Uniform());
  const auto w = MinMaxFlipWeights(values);
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = 0; j < values.size(); ++j) {
      if (values[i] < values[j]) {
        EXPECT_GE(w[i], w[j]);
      }
    }
  }
}

TEST(MinMaxFlipTest, DegenerateAllEqualGivesOnes) {
  const auto w = MinMaxFlipWeights({2.0, 2.0, 2.0});
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(MinMaxFlipDeathTest, EmptyAborts) {
  EXPECT_DEATH({ (void)MinMaxFlipWeights({}); }, "empty");
}

TEST(InitialWeightsTest, SmallReconErrorGetsLargeWeight) {
  // Eq. (5): normal instances (small error) start with high weight.
  const auto w = InitialWeightsFromReconError({0.1, 5.0, 2.0});
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
  EXPECT_GT(w[2], 0.0);
  EXPECT_LT(w[2], 1.0);
}

TEST(UpdatedWeightsTest, ConfidentInstancesGetLowWeight) {
  // Eq. (4): rows with peaked softmax (high epsilon) -> low weight; rows
  // with flat softmax (the non-target signature) -> high weight.
  nn::Matrix logits(3, 4, 0.0);
  logits.At(0, 0) = 10.0;                      // Very confident.
  logits.At(1, 1) = 1.0;                       // Mildly confident.
  /* row 2 stays flat: epsilon = 0.25. */
  const auto w = UpdatedWeightsFromLogits(logits);
  EXPECT_DOUBLE_EQ(w[0], 0.0);
  EXPECT_DOUBLE_EQ(w[2], 1.0);
  EXPECT_GT(w[1], w[0]);
  EXPECT_LT(w[1], w[2]);
}

TEST(UpdatedWeightsTest, MatchesManualEpsilonComputation) {
  Rng rng(3);
  nn::Matrix logits(5, 3);
  for (double& v : logits.data()) v = rng.Normal();
  const auto w = UpdatedWeightsFromLogits(logits);
  const auto eps = nn::MaxSoftmaxProb(logits, 0, 3);
  const auto expected = MinMaxFlipWeights(eps);
  for (size_t i = 0; i < w.size(); ++i) EXPECT_DOUBLE_EQ(w[i], expected[i]);
}

}  // namespace
}  // namespace core
}  // namespace targad
