// Pins the double training path to golden bit patterns captured from the
// code BEFORE the kernel-layer refactor. Every value is compared through
// std::bit_cast<uint64_t> — not within a tolerance — so any change to
// accumulation order, expression shape, or dispatch policy on the double
// path (which must always take the scalar kernels) fails here, on any
// backend and with thread tiling active.

#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/pipeline.h"
#include "data/dataset.h"
#include "gtest/gtest.h"
#include "nn/kernels/kernels.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"

namespace targad {
namespace {

// Captured from the seed (pre-kernel-layer) tree: MLP probe below.
constexpr uint64_t kNetGolden[] = {
    0x3fcb027976e4eb14ull, 0x3fdc011f25a17a29ull, 0x3fe13cf497bb1ec5ull,
    0x3fde6f80ef0a6fddull, 0x3fe66a4ff86f0119ull, 0x3fdfa9904a8aa312ull,
    0x3fe569079bf0274dull, 0x40129ce28a9d826cull, 0xbfb9e6666a4436f5ull,
    0x3f6d79720c518c0dull, 0xbfe47dfe24ce0916ull, 0x3fdd9fa606422754ull,
    0x3fe6994035df23f7ull, 0xbff86c55b17fa1acull, 0xbfc7df441b9d5d9eull,
    0xbfcba46dd25ec691ull, 0xbfe4c8eb3f03eb84ull, 0x3feab3be00f96633ull,
    0xbfd70bfeef4c6fa2ull, 0xbffe3b668a7d21eaull, 0xbfb90d0ddfb9f6b1ull,
    0x3fb2d6e2c35f3493ull, 0x3fd09d2db14e3d96ull};

// Captured from the seed tree: full-pipeline scores probe below.
constexpr uint64_t kPipelineGolden[] = {
    0x3fd68982214d0e98ull, 0x3fd51e8744cf77caull, 0x3fd6114ab003b413ull,
    0x3fdeba5a2c9ea459ull, 0x3fd6511e52e35e31ull, 0x3fd57fad13a2e10aull,
    0x3fd5fe1e65558100ull, 0x3fdcecf6cc41d2c8ull, 0x3fd5996c622b44f7ull,
    0x3fd599a7aa66e2ffull, 0x3fd5f24334b79abfull, 0x3fdd3444fdf4943eull};

data::RawTable MakeTable(uint64_t seed, size_t normals) {
  Rng rng(seed);
  data::RawTable table;
  table.column_names = {"amount", "rate", "channel", "label"};
  for (size_t i = 0; i < normals; ++i) {
    const bool mode = rng.Bernoulli(0.5);
    char a[32], r[32];
    std::snprintf(a, sizeof a, "%.6f", rng.Normal(mode ? 20.0 : 60.0, 4.0));
    std::snprintf(r, sizeof r, "%.6f", rng.Normal(0.3, 0.05));
    table.rows.push_back({a, r, mode ? "web" : "pos", ""});
  }
  for (size_t i = 0; i < normals / 16 + 8; ++i) {
    char a[32], r[32];
    std::snprintf(a, sizeof a, "%.6f", rng.Normal(150.0, 5.0));
    std::snprintf(r, sizeof r, "%.6f", rng.Normal(0.9, 0.03));
    table.rows.push_back({a, r, "web", "fraud"});
  }
  return table;
}

void ExpectBitExact(const std::vector<double>& probe, const uint64_t* golden,
                    size_t golden_size) {
  ASSERT_EQ(probe.size(), golden_size);
  for (size_t i = 0; i < probe.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(probe[i]), golden[i])
        << "probe[" << i << "] = " << probe[i] << " drifted from the seed";
  }
}

std::vector<double> RunMlpProbe() {
  Rng rng(42);
  nn::Sequential net = nn::Sequential::MakeMlp(
      {5, 8, 4, 3}, nn::Activation::kReLU, nn::Activation::kSigmoid, &rng);
  nn::Matrix x(16, 5);
  nn::Matrix y(16, 3);
  for (auto& v : x.data()) v = rng.Normal(0.0, 1.0);
  for (auto& v : y.data()) v = rng.Uniform();
  nn::Adam opt(net.Params(), net.Grads(), 0.01);
  double last_loss = 0.0;
  for (int step = 0; step < 30; ++step) {
    net.ZeroGrads();
    const nn::Matrix pred = net.Forward(x);
    const nn::LossResult loss = nn::MseLoss(pred, y);
    last_loss = loss.loss;
    net.Backward(loss.grad);
    opt.Step();
  }
  std::vector<double> probe = {last_loss};
  const nn::Matrix out = net.Infer(x);
  for (size_t i = 0; i < out.rows(); i += 5) probe.push_back(out.At(i, 0));
  for (nn::Matrix* p : net.Params()) {
    probe.push_back(p->data().front());
    probe.push_back(p->data().back());
    probe.push_back(p->Sum());
  }
  return probe;
}

std::vector<double> RunPipelineProbe() {
  core::PipelineConfig config;
  config.model.seed = 11;
  config.model.selection.k = 2;
  config.model.selection.autoencoder.epochs = 8;
  config.model.epochs = 10;
  auto trained = core::TargAdPipeline::Train(MakeTable(3, 160), config);
  EXPECT_TRUE(trained.ok()) << trained.status().ToString();
  if (!trained.ok()) return {};
  const data::RawTable test = MakeTable(4, 24);
  auto scores = trained.ValueOrDie().Score(test);
  EXPECT_TRUE(scores.ok()) << scores.status().ToString();
  if (!scores.ok()) return {};
  const std::vector<double>& s = scores.ValueOrDie();
  EXPECT_GE(s.size(), std::size(kPipelineGolden));
  if (s.size() < std::size(kPipelineGolden)) return {};
  return std::vector<double>(s.begin(),
                             s.begin() + std::size(kPipelineGolden));
}

TEST(TrainingBitExactTest, MlpTrainingLoopMatchesSeedBits) {
  ExpectBitExact(RunMlpProbe(), kNetGolden, std::size(kNetGolden));
}

TEST(TrainingBitExactTest, FullPipelineTrainingMatchesSeedBits) {
  ExpectBitExact(RunPipelineProbe(), kPipelineGolden,
                 std::size(kPipelineGolden));
}

// The row-tiled parallel training contract: every output row is owned by
// exactly one thread and reductions keep a fixed order, so the SAME golden
// bits must come out at every thread count, with tiling thresholds forced
// to zero so even these small probes actually fan out, on every backend
// available in the build (double always takes the scalar kernels).
struct SweepParam {
  nn::kernels::Backend backend;
  size_t threads;
};

class TrainingBitExactSweepTest : public ::testing::TestWithParam<SweepParam> {
 public:
  void SetUp() override {
    saved_backend_ = nn::kernels::ActiveBackend();
    saved_tiling_ = nn::kernels::Tiling();
    if (!nn::kernels::SetBackendForTest(GetParam().backend)) {
      GTEST_SKIP() << "backend "
                   << nn::kernels::BackendName(GetParam().backend)
                   << " not available in this build/CPU";
    }
    nn::kernels::TilingConfig tiling;
    tiling.threads = GetParam().threads;
    tiling.min_flops = 1;
    tiling.min_rows_per_tile = 1;
    nn::kernels::SetTilingForTest(tiling);
  }
  void TearDown() override {
    nn::kernels::SetBackendForTest(saved_backend_);
    nn::kernels::SetTilingForTest(saved_tiling_);
  }

 private:
  nn::kernels::Backend saved_backend_ = nn::kernels::Backend::kScalar;
  nn::kernels::TilingConfig saved_tiling_;
};

TEST_P(TrainingBitExactSweepTest, MlpGoldenBitsInvariant) {
  ExpectBitExact(RunMlpProbe(), kNetGolden, std::size(kNetGolden));
}

TEST_P(TrainingBitExactSweepTest, PipelineGoldenBitsInvariant) {
  ExpectBitExact(RunPipelineProbe(), kPipelineGolden,
                 std::size(kPipelineGolden));
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsByBackend, TrainingBitExactSweepTest,
    ::testing::Values(SweepParam{nn::kernels::Backend::kScalar, 1},
                      SweepParam{nn::kernels::Backend::kScalar, 2},
                      SweepParam{nn::kernels::Backend::kScalar, 4},
                      SweepParam{nn::kernels::Backend::kScalar, 8},
                      SweepParam{nn::kernels::Backend::kAvx2, 1},
                      SweepParam{nn::kernels::Backend::kAvx2, 2},
                      SweepParam{nn::kernels::Backend::kAvx2, 4},
                      SweepParam{nn::kernels::Backend::kAvx2, 8}),
    [](const auto& info) {
      return std::string(nn::kernels::BackendName(info.param.backend)) +
             "_threads" + std::to_string(info.param.threads);
    });

}  // namespace
}  // namespace targad
