#include "core/classifier.h"
#include <cmath>

#include <gtest/gtest.h>

#include "core/pseudo_labels.h"
#include "nn/losses.h"
#include "test_util.h"

namespace targad {
namespace core {
namespace {

// Synthetic three-role training data in 6 dims: two target classes around
// distinct corners, normals in two clusters, non-targets far away.
struct RoleData {
  nn::Matrix labeled_x;
  std::vector<int> labeled_class;
  nn::Matrix normal_x;
  std::vector<int> normal_cluster;
  nn::Matrix anomaly_x;
  std::vector<double> anomaly_weights;
};

RoleData MakeRoleData(uint64_t seed, size_t per_group = 60) {
  Rng rng(seed);
  RoleData d;
  auto fill = [&](nn::Matrix* m, size_t rows, const std::vector<double>& center) {
    *m = nn::Matrix(rows, 6);
    for (size_t i = 0; i < rows; ++i) {
      for (size_t j = 0; j < 6; ++j) {
        m->At(i, j) = center[j] + rng.Normal(0.0, 0.08);
      }
    }
  };
  nn::Matrix t0, t1, n0, n1, o;
  fill(&t0, per_group / 2, {0.9, 0.1, 0.1, 0.1, 0.1, 0.1});
  fill(&t1, per_group / 2, {0.1, 0.9, 0.1, 0.1, 0.1, 0.1});
  fill(&n0, per_group, {0.3, 0.3, 0.7, 0.3, 0.3, 0.3});
  fill(&n1, per_group, {0.3, 0.3, 0.3, 0.7, 0.3, 0.3});
  fill(&o, per_group, {0.9, 0.9, 0.9, 0.9, 0.9, 0.9});
  d.labeled_x = t0;
  d.labeled_x.AppendRows(t1);
  d.labeled_class.assign(per_group / 2, 0);
  d.labeled_class.insert(d.labeled_class.end(), per_group / 2, 1);
  d.normal_x = n0;
  d.normal_x.AppendRows(n1);
  d.normal_cluster.assign(per_group, 0);
  d.normal_cluster.insert(d.normal_cluster.end(), per_group, 1);
  d.anomaly_x = o;
  d.anomaly_weights.assign(per_group, 1.0);
  return d;
}

ClassifierConfig FastConfig() {
  ClassifierConfig config;
  config.hidden = {16};
  config.learning_rate = 3e-3;
  config.seed = 3;
  return config;
}

TEST(ClassifierTest, MakeValidatesInputs) {
  EXPECT_FALSE(TargAdClassifier::Make(FastConfig(), 0, 2, 2).ok());
  EXPECT_FALSE(TargAdClassifier::Make(FastConfig(), 6, 0, 2).ok());
  EXPECT_FALSE(TargAdClassifier::Make(FastConfig(), 6, 2, 0).ok());
  ClassifierConfig bad = FastConfig();
  bad.lambda1 = -0.1;
  EXPECT_FALSE(TargAdClassifier::Make(bad, 6, 2, 2).ok());
  bad = FastConfig();
  bad.batch_size = 0;
  EXPECT_FALSE(TargAdClassifier::Make(bad, 6, 2, 2).ok());
}

TEST(ClassifierTest, LogitWidthIsMPlusK) {
  auto clf = TargAdClassifier::Make(FastConfig(), 6, 2, 3).ValueOrDie();
  nn::Matrix x(4, 6, 0.5);
  EXPECT_EQ(clf.Logits(x).cols(), 5u);
}

TEST(ClassifierTest, TrainingReducesLoss) {
  RoleData d = MakeRoleData(1);
  auto clf = TargAdClassifier::Make(FastConfig(), 6, 2, 2).ValueOrDie();
  Rng rng(2);
  EpochLoss first = clf.TrainEpoch(d.labeled_x, d.labeled_class, d.normal_x,
                                   d.normal_cluster, d.anomaly_x,
                                   d.anomaly_weights, &rng);
  EpochLoss last = first;
  for (int epoch = 0; epoch < 25; ++epoch) {
    last = clf.TrainEpoch(d.labeled_x, d.labeled_class, d.normal_x,
                          d.normal_cluster, d.anomaly_x, d.anomaly_weights, &rng);
  }
  EXPECT_LT(last.total, first.total);
  EXPECT_LT(last.ce, first.ce);
}

TEST(ClassifierTest, LearnsRoleSeparation) {
  RoleData d = MakeRoleData(3);
  auto clf = TargAdClassifier::Make(FastConfig(), 6, 2, 2).ValueOrDie();
  Rng rng(4);
  for (int epoch = 0; epoch < 120; ++epoch) {
    clf.TrainEpoch(d.labeled_x, d.labeled_class, d.normal_x, d.normal_cluster,
                   d.anomaly_x, d.anomaly_weights, &rng);
  }
  // Target anomalies: their class logit dominates.
  nn::Matrix pt = clf.PredictProba(d.labeled_x);
  size_t correct = 0;
  for (size_t i = 0; i < pt.rows(); ++i) {
    const auto cls = static_cast<size_t>(d.labeled_class[i]);
    if (pt.At(i, cls) > 0.5) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(pt.rows()), 0.9);

  // Normal candidates: mass concentrates on the last k dims.
  nn::Matrix pn = clf.PredictProba(d.normal_x);
  double normal_mass = 0.0;
  for (size_t i = 0; i < pn.rows(); ++i) {
    normal_mass += pn.At(i, 2) + pn.At(i, 3);
  }
  EXPECT_GT(normal_mass / static_cast<double>(pn.rows()), 0.8);

  // Non-target candidates: roughly uniform over the FIRST m dims, near-zero
  // on the normal dims (the y^o calibration).
  nn::Matrix po = clf.PredictProba(d.anomaly_x);
  double target_mass = 0.0, balance = 0.0;
  for (size_t i = 0; i < po.rows(); ++i) {
    target_mass += po.At(i, 0) + po.At(i, 1);
    balance += std::fabs(po.At(i, 0) - po.At(i, 1));
  }
  EXPECT_GT(target_mass / static_cast<double>(po.rows()), 0.7);
  EXPECT_LT(balance / static_cast<double>(po.rows()), 0.35);
}

TEST(ClassifierTest, AblationFlagsZeroOutTerms) {
  RoleData d = MakeRoleData(5);
  ClassifierConfig config = FastConfig();
  config.use_oe = false;
  config.use_re = false;
  auto clf = TargAdClassifier::Make(config, 6, 2, 2).ValueOrDie();
  Rng rng(6);
  EpochLoss loss = clf.TrainEpoch(d.labeled_x, d.labeled_class, d.normal_x,
                                  d.normal_cluster, d.anomaly_x,
                                  d.anomaly_weights, &rng);
  EXPECT_DOUBLE_EQ(loss.oe, 0.0);
  EXPECT_DOUBLE_EQ(loss.re, 0.0);
  EXPECT_GT(loss.ce, 0.0);
}

TEST(ClassifierTest, ZeroWeightsSilenceOeGradient) {
  RoleData d = MakeRoleData(7);
  // With all-zero candidate weights, the OE term contributes no loss.
  d.anomaly_weights.assign(d.anomaly_weights.size(), 0.0);
  auto clf = TargAdClassifier::Make(FastConfig(), 6, 2, 2).ValueOrDie();
  Rng rng(8);
  EpochLoss loss = clf.TrainEpoch(d.labeled_x, d.labeled_class, d.normal_x,
                                  d.normal_cluster, d.anomaly_x,
                                  d.anomaly_weights, &rng);
  EXPECT_DOUBLE_EQ(loss.oe, 0.0);
}

}  // namespace
}  // namespace core
}  // namespace targad
