// Property sweeps over the NN substrate: gradient correctness across
// architectures and loss types, optimizer convergence across seeds, and
// serialization round-trips for random networks.

#include <bit>
#include <cmath>
#include <cstdint>
#include <sstream>

#include <gtest/gtest.h>

#include "nn/gradcheck.h"
#include "nn/kernels/kernels.h"
#include "nn/losses.h"
#include "nn/serialize.h"
#include "nn/sequential.h"

namespace targad {
namespace nn {
namespace {

Matrix RandomBatch(size_t rows, size_t cols, uint64_t seed, double scale = 1.0) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.Uniform(-scale, scale);
  return m;
}

// Architecture sweep: (depth, width) combinations; each is gradient-checked
// against three different loss heads.
struct ArchParam {
  std::vector<size_t> sizes;
  Activation hidden;
};

class ArchGradCheckTest : public ::testing::TestWithParam<ArchParam> {};

TEST_P(ArchGradCheckTest, SoftCrossEntropyGradients) {
  const ArchParam& param = GetParam();
  Rng rng(17);
  Sequential net =
      Sequential::MakeMlp(param.sizes, param.hidden, Activation::kNone, &rng);
  Matrix x = RandomBatch(6, param.sizes.front(), 18);
  const size_t out_dim = param.sizes.back();
  Matrix targets(6, out_dim, 1.0 / static_cast<double>(out_dim));
  auto loss_fn = [&](const Matrix& out) {
    return WeightedSoftCrossEntropy(out, targets, {}, 6.0);
  };
  EXPECT_LT(MaxParamGradError(&net, x, loss_fn), 1e-5);
}

TEST_P(ArchGradCheckTest, EntropyGradients) {
  const ArchParam& param = GetParam();
  Rng rng(19);
  Sequential net =
      Sequential::MakeMlp(param.sizes, param.hidden, Activation::kNone, &rng);
  Matrix x = RandomBatch(5, param.sizes.front(), 20);
  auto loss_fn = [](const Matrix& out) { return SoftmaxEntropy(out, 5.0); };
  // Slightly looser tolerance: LeakyReLU kinks add finite-difference noise.
  EXPECT_LT(MaxParamGradError(&net, x, loss_fn), 2e-4);
}

TEST_P(ArchGradCheckTest, InverseErrorGradients) {
  const ArchParam& param = GetParam();
  Rng rng(21);
  Sequential net =
      Sequential::MakeMlp(param.sizes, param.hidden, Activation::kSigmoid, &rng);
  Matrix x = RandomBatch(4, param.sizes.front(), 22);
  Matrix target = RandomBatch(4, param.sizes.back(), 23, 0.5);
  auto loss_fn = [&](const Matrix& out) {
    return InverseErrorLoss(out, target);
  };
  EXPECT_LT(MaxParamGradError(&net, x, loss_fn), 2e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, ArchGradCheckTest,
    ::testing::Values(ArchParam{{3, 4}, Activation::kReLU},            // Linear head.
                      ArchParam{{5, 8, 3}, Activation::kReLU},         // 1 hidden.
                      ArchParam{{4, 8, 6, 3}, Activation::kTanh},      // 2 hidden.
                      ArchParam{{6, 10, 8, 6, 4}, Activation::kLeakyReLU},
                      ArchParam{{8, 4, 2}, Activation::kSigmoid}));

// Serialization property: any random network round-trips to identical
// forward outputs through WriteParams/ReadParams.
class SerializePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializePropertyTest, RandomNetworksRoundTrip) {
  Rng seed_rng(GetParam());
  std::vector<size_t> sizes{2 + seed_rng.UniformInt(6)};
  const size_t depth = 1 + seed_rng.UniformInt(3);
  for (size_t d = 0; d < depth; ++d) sizes.push_back(2 + seed_rng.UniformInt(8));
  Rng r1(GetParam() * 3 + 1), r2(GetParam() * 7 + 5);
  Sequential a =
      Sequential::MakeMlp(sizes, Activation::kReLU, Activation::kNone, &r1);
  Sequential b =
      Sequential::MakeMlp(sizes, Activation::kReLU, Activation::kNone, &r2);

  std::stringstream stream;
  ASSERT_TRUE(WriteParams(stream, a).ok());
  ASSERT_TRUE(ReadParams(stream, &b).ok());

  Matrix x = RandomBatch(3, sizes.front(), GetParam() + 99);
  Matrix ya = a.Forward(x);
  Matrix yb = b.Forward(x);
  for (size_t i = 0; i < ya.size(); ++i) {
    EXPECT_DOUBLE_EQ(ya.data()[i], yb.data()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Loss identities that must hold for arbitrary logits.
class LossIdentityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LossIdentityTest, MspEqualsExpNegativeAllDimsGap) {
  // p_max = exp(-(lse - z_max)): the identity that motivated restricting
  // the ED strategy to the target block (core/ood.h).
  Matrix logits = RandomBatch(4, 6, GetParam(), 3.0);
  const Matrix p = SoftmaxRows(logits);
  const auto lse = LogSumExpRows(logits, 0, 6);
  for (size_t i = 0; i < 4; ++i) {
    double zmax = logits.At(i, 0), pmax = p.At(i, 0);
    for (size_t j = 1; j < 6; ++j) {
      zmax = std::max(zmax, logits.At(i, j));
      pmax = std::max(pmax, p.At(i, j));
    }
    EXPECT_NEAR(pmax, std::exp(-(lse[i] - zmax)), 1e-12);
  }
}

TEST_P(LossIdentityTest, CrossEntropyDecomposesAsLseMinusDot) {
  // For any soft target t: CE = lse(z) - t.z (when sum t = 1).
  Matrix logits = RandomBatch(3, 5, GetParam() + 50, 2.0);
  Rng rng(GetParam() + 51);
  Matrix targets(3, 5, 0.0);
  for (size_t i = 0; i < 3; ++i) {
    double total = 0.0;
    for (size_t j = 0; j < 5; ++j) {
      targets.At(i, j) = rng.Uniform();
      total += targets.At(i, j);
    }
    for (size_t j = 0; j < 5; ++j) targets.At(i, j) /= total;
  }
  const LossResult ce = WeightedSoftCrossEntropy(logits, targets, {}, 3.0);
  const auto lse = LogSumExpRows(logits, 0, 5);
  double manual = 0.0;
  for (size_t i = 0; i < 3; ++i) {
    double dot = 0.0;
    for (size_t j = 0; j < 5; ++j) dot += targets.At(i, j) * logits.At(i, j);
    manual += lse[i] - dot;
  }
  EXPECT_NEAR(ce.loss, manual / 3.0, 1e-9);
}

TEST_P(LossIdentityTest, EntropyGradSumsToZeroPerRow) {
  // Softmax-entropy gradients live in the simplex tangent space: each
  // row's gradient entries sum to zero.
  Matrix logits = RandomBatch(4, 5, GetParam() + 80, 2.5);
  const LossResult re = SoftmaxEntropy(logits, 4.0);
  for (size_t i = 0; i < 4; ++i) {
    double row_sum = 0.0;
    for (size_t j = 0; j < 5; ++j) row_sum += re.grad.At(i, j);
    EXPECT_NEAR(row_sum, 0.0, 1e-12);
  }
}

TEST_P(LossIdentityTest, CrossEntropyGradSumsToZeroPerRow) {
  Matrix logits = RandomBatch(4, 5, GetParam() + 90, 2.5);
  Matrix targets(4, 5, 0.2);  // Uniform soft target sums to 1.
  const LossResult ce = WeightedSoftCrossEntropy(logits, targets, {}, 4.0);
  for (size_t i = 0; i < 4; ++i) {
    double row_sum = 0.0;
    for (size_t j = 0; j < 5; ++j) row_sum += ce.grad.At(i, j);
    EXPECT_NEAR(row_sum, 0.0, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossIdentityTest,
                         ::testing::Values(11, 22, 33, 44, 55));

// Backend x thread-count sweep: analytic gradients stay correct AND the
// double backward-pass bits are invariant across every (backend, threads)
// combination — the kernel-dispatch half of the determinism contract that
// training_bitexact_test pins end-to-end.
struct KernelConfigParam {
  kernels::Backend backend;
  size_t threads;
};

class KernelConfigGradCheckTest
    : public ::testing::TestWithParam<KernelConfigParam> {
 public:
  void SetUp() override {
    saved_backend_ = kernels::ActiveBackend();
    saved_tiling_ = kernels::Tiling();
    if (!kernels::SetBackendForTest(GetParam().backend)) {
      GTEST_SKIP() << "backend " << kernels::BackendName(GetParam().backend)
                   << " not available in this build/CPU";
    }
    kernels::TilingConfig tiling;
    tiling.threads = GetParam().threads;
    tiling.min_flops = 1;  // Tile even these small probes.
    tiling.min_rows_per_tile = 1;
    kernels::SetTilingForTest(tiling);
  }
  void TearDown() override {
    kernels::SetBackendForTest(saved_backend_);
    kernels::SetTilingForTest(saved_tiling_);
  }

 private:
  kernels::Backend saved_backend_ = kernels::Backend::kScalar;
  kernels::TilingConfig saved_tiling_;
};

// One backward pass over a fixed net/batch; returns every parameter
// gradient, flattened.
std::vector<double> BackwardGradProbe() {
  Rng rng(29);
  Sequential net = Sequential::MakeMlp({6, 9, 5, 4}, Activation::kLeakyReLU,
                                       Activation::kNone, &rng);
  Matrix x = RandomBatch(7, 6, 30);
  Matrix targets(7, 4, 0.25);
  net.ZeroGrads();
  Matrix out = net.Forward(x);
  const LossResult ce = WeightedSoftCrossEntropy(out, targets, {}, 7.0);
  net.Backward(ce.grad);
  std::vector<double> flat = {ce.loss};
  for (Matrix* g : net.Grads()) {
    flat.insert(flat.end(), g->data().begin(), g->data().end());
  }
  return flat;
}

TEST_P(KernelConfigGradCheckTest, GradCheckPassesUnderConfig) {
  Rng rng(31);
  Sequential net = Sequential::MakeMlp({5, 8, 4}, Activation::kReLU,
                                       Activation::kNone, &rng);
  Matrix x = RandomBatch(6, 5, 32);
  Matrix targets(6, 4, 0.25);
  auto loss_fn = [&](const Matrix& out) {
    return WeightedSoftCrossEntropy(out, targets, {}, 6.0);
  };
  EXPECT_LT(MaxParamGradError(&net, x, loss_fn), 1e-5);
}

TEST_P(KernelConfigGradCheckTest, DoubleBackwardBitsInvariant) {
  const std::vector<double> probe = BackwardGradProbe();

  // Reference: scalar backend, no tiling.
  const kernels::TilingConfig active = kernels::Tiling();
  ASSERT_TRUE(kernels::SetBackendForTest(kernels::Backend::kScalar));
  kernels::SetTilingForTest(kernels::TilingConfig{});
  const std::vector<double> reference = BackwardGradProbe();
  kernels::SetBackendForTest(GetParam().backend);
  kernels::SetTilingForTest(active);

  ASSERT_EQ(probe.size(), reference.size());
  for (size_t i = 0; i < probe.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(probe[i]),
              std::bit_cast<uint64_t>(reference[i]))
        << "gradient element " << i << " drifted under backend "
        << kernels::BackendName(GetParam().backend) << ", "
        << GetParam().threads << " threads";
  }
}

INSTANTIATE_TEST_SUITE_P(
    BackendsByThreads, KernelConfigGradCheckTest,
    ::testing::Values(KernelConfigParam{kernels::Backend::kScalar, 1},
                      KernelConfigParam{kernels::Backend::kScalar, 4},
                      KernelConfigParam{kernels::Backend::kAvx2, 1},
                      KernelConfigParam{kernels::Backend::kAvx2, 4}),
    [](const auto& info) {
      return std::string(kernels::BackendName(info.param.backend)) +
             "_threads" + std::to_string(info.param.threads);
    });

}  // namespace
}  // namespace nn
}  // namespace targad
