#include "common/string_util.h"

#include <gtest/gtest.h>

#include "common/env.h"

namespace targad {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, SingleFieldWithoutDelimiter) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(TrimTest, StripsWhitespaceBothSides) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\nz\r "), "z");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"x"}, ","), "x");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble("-1e-3", &v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
  EXPECT_TRUE(ParseDouble(" 42 ", &v));
  EXPECT_DOUBLE_EQ(v, 42.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("nan", &v));  // Non-finite rejected.
  EXPECT_FALSE(ParseDouble("inf", &v));
}

TEST(ParseIntTest, ParsesValidIntegers) {
  long v = 0;  // NOLINT(runtime/int)
  EXPECT_TRUE(ParseInt("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt("-7", &v));
  EXPECT_EQ(v, -7);
}

TEST(ParseIntTest, RejectsNonIntegers) {
  long v = 0;  // NOLINT(runtime/int)
  EXPECT_FALSE(ParseInt("3.5", &v));
  EXPECT_FALSE(ParseInt("", &v));
  EXPECT_FALSE(ParseInt("12abc", &v));
}

TEST(FormatDoubleTest, RespectsPrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(0.5, 3), "0.500");
  EXPECT_EQ(FormatDouble(-1.0, 0), "-1");
}

TEST(ToLowerTest, LowersAscii) {
  EXPECT_EQ(ToLower("AbC-12"), "abc-12");
}

TEST(EnvTest, FallsBackWhenUnset) {
  unsetenv("TARGAD_TEST_ENV_VAR");
  EXPECT_DOUBLE_EQ(GetEnvDouble("TARGAD_TEST_ENV_VAR", 2.5), 2.5);
  EXPECT_EQ(GetEnvInt("TARGAD_TEST_ENV_VAR", 3), 3);
  EXPECT_EQ(GetEnvString("TARGAD_TEST_ENV_VAR", "d"), "d");
}

TEST(EnvTest, ReadsSetValues) {
  setenv("TARGAD_TEST_ENV_VAR", "1.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("TARGAD_TEST_ENV_VAR", 0.0), 1.5);
  setenv("TARGAD_TEST_ENV_VAR", "7", 1);
  EXPECT_EQ(GetEnvInt("TARGAD_TEST_ENV_VAR", 0), 7);
  setenv("TARGAD_TEST_ENV_VAR", "hello", 1);
  EXPECT_EQ(GetEnvString("TARGAD_TEST_ENV_VAR", ""), "hello");
  // Unparsable values fall back.
  EXPECT_EQ(GetEnvInt("TARGAD_TEST_ENV_VAR", 9), 9);
  unsetenv("TARGAD_TEST_ENV_VAR");
}

}  // namespace
}  // namespace targad
