#include "nn/serialize.h"

#include <sstream>

#include <gtest/gtest.h>

#include "core/targad.h"
#include "test_util.h"

namespace targad {
namespace {

TEST(MatrixSerializeTest, RoundTripPreservesValuesExactly) {
  Rng rng(1);
  nn::Matrix m(3, 4);
  for (double& v : m.data()) v = rng.Normal() * 1e-7;
  std::stringstream stream;
  ASSERT_TRUE(nn::WriteMatrix(stream, m).ok());
  auto loaded = nn::ReadMatrix(stream).ValueOrDie();
  ASSERT_TRUE(loaded.SameShape(m));
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.data()[i], m.data()[i]);
  }
}

TEST(MatrixSerializeTest, RejectsCorruptHeaders) {
  std::stringstream bad1("matrx 2 2\n1 2\n3 4\n");
  EXPECT_FALSE(nn::ReadMatrix(bad1).ok());
  std::stringstream bad2("matrix 2\n");
  EXPECT_FALSE(nn::ReadMatrix(bad2).ok());
  std::stringstream truncated("matrix 2 2\n1 2 3\n");
  EXPECT_FALSE(nn::ReadMatrix(truncated).ok());
  std::stringstream nonfinite("matrix 1 1\nnan\n");
  EXPECT_FALSE(nn::ReadMatrix(nonfinite).ok());
}

TEST(ParamsSerializeTest, RoundTripThroughIdenticalArchitecture) {
  Rng r1(2), r2(3);
  nn::Sequential a = nn::Sequential::MakeMlp({4, 8, 2}, nn::Activation::kReLU,
                                             nn::Activation::kNone, &r1);
  nn::Sequential b = nn::Sequential::MakeMlp({4, 8, 2}, nn::Activation::kReLU,
                                             nn::Activation::kNone, &r2);
  std::stringstream stream;
  ASSERT_TRUE(nn::WriteParams(stream, a).ok());
  ASSERT_TRUE(nn::ReadParams(stream, &b).ok());

  nn::Matrix x(3, 4, 0.25);
  nn::Matrix ya = a.Forward(x);
  nn::Matrix yb = b.Forward(x);
  for (size_t i = 0; i < ya.size(); ++i) {
    EXPECT_DOUBLE_EQ(ya.data()[i], yb.data()[i]);
  }
}

TEST(MatrixSerializeTest, RejectsNonNumericCell) {
  std::stringstream garbage("matrix 2 2\n1 2\nbogus 4\n");
  auto result = nn::ReadMatrix(garbage);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParamsSerializeTest, RejectsArchitectureMismatch) {
  Rng r1(4), r2(5);
  nn::Sequential a = nn::Sequential::MakeMlp({4, 8, 2}, nn::Activation::kReLU,
                                             nn::Activation::kNone, &r1);
  nn::Sequential narrower = nn::Sequential::MakeMlp(
      {4, 6, 2}, nn::Activation::kReLU, nn::Activation::kNone, &r2);
  std::stringstream stream;
  ASSERT_TRUE(nn::WriteParams(stream, a).ok());
  EXPECT_FALSE(nn::ReadParams(stream, &narrower).ok());
}

// Failure-atomicity: a ReadParams that fails partway must not leave the
// target network half-overwritten. Exercises the two-phase (read-validate,
// then commit) implementation.
TEST(ParamsSerializeTest, FailedReadLeavesNetworkUntouched) {
  Rng r1(6), r2(7);
  nn::Sequential a = nn::Sequential::MakeMlp({4, 8, 2}, nn::Activation::kReLU,
                                             nn::Activation::kNone, &r1);
  nn::Sequential b = nn::Sequential::MakeMlp({4, 8, 2}, nn::Activation::kReLU,
                                             nn::Activation::kNone, &r2);
  nn::Matrix x(3, 4, 0.25);
  const nn::Matrix before = b.Forward(x);

  std::stringstream full;
  ASSERT_TRUE(nn::WriteParams(full, a).ok());
  const std::string serialized = full.str();

  // Truncated mid-stream: the header and first matrix parse fine, later
  // matrices are cut off.
  std::stringstream truncated(serialized.substr(0, serialized.size() / 2));
  EXPECT_FALSE(nn::ReadParams(truncated, &b).ok());

  // Corrupt payload cell in the LAST matrix: everything before it reads
  // cleanly, so a non-atomic implementation would have already overwritten
  // the earlier parameters. The token must start with the junk character —
  // trailing junk after a parsed double would not fail operator>>.
  std::string corrupted = serialized;
  const size_t last_digit = corrupted.find_last_of("0123456789");
  ASSERT_NE(last_digit, std::string::npos);
  const size_t sep = corrupted.find_last_of(" \n", last_digit);
  ASSERT_NE(sep, std::string::npos);
  corrupted[sep + 1] = 'x';
  std::stringstream bad_cell(corrupted);
  EXPECT_FALSE(nn::ReadParams(bad_cell, &b).ok());

  const nn::Matrix after = b.Forward(x);
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after.data()[i], before.data()[i]) << "param state corrupted";
  }
}

TEST(ParamsSerializeTest, RejectsParameterCountMismatch) {
  Rng r1(8), r2(9);
  nn::Sequential a = nn::Sequential::MakeMlp({4, 8, 2}, nn::Activation::kReLU,
                                             nn::Activation::kNone, &r1);
  nn::Sequential deeper = nn::Sequential::MakeMlp(
      {4, 8, 8, 2}, nn::Activation::kReLU, nn::Activation::kNone, &r2);
  std::stringstream stream;
  ASSERT_TRUE(nn::WriteParams(stream, a).ok());
  auto status = nn::ReadParams(stream, &deeper);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ParamsSerializeTest, HeaderCarriesF64DtypeTag) {
  Rng rng(10);
  nn::Sequential net = nn::Sequential::MakeMlp(
      {3, 4, 2}, nn::Activation::kReLU, nn::Activation::kNone, &rng);
  std::stringstream stream;
  ASSERT_TRUE(nn::WriteParams(stream, net).ok());
  std::string tag, dtype;
  size_t count = 0;
  stream >> tag >> count >> dtype;
  EXPECT_EQ(tag, "params");
  EXPECT_EQ(count, 4u);
  EXPECT_EQ(dtype, "f64");
}

TEST(ParamsSerializeTest, AcceptsLegacyUntaggedHeader) {
  Rng r1(11), r2(12);
  nn::Sequential a = nn::Sequential::MakeMlp({3, 4, 2}, nn::Activation::kReLU,
                                             nn::Activation::kNone, &r1);
  nn::Sequential b = nn::Sequential::MakeMlp({3, 4, 2}, nn::Activation::kReLU,
                                             nn::Activation::kNone, &r2);
  std::stringstream tagged;
  ASSERT_TRUE(nn::WriteParams(tagged, a).ok());
  // Rewrite the header the way pre-dtype-tag artifacts were written.
  std::string text = tagged.str();
  const std::string modern = "params 4 f64\n";
  ASSERT_EQ(text.compare(0, modern.size(), modern), 0);
  text.replace(0, modern.size(), "params 4\n");

  std::stringstream legacy(text);
  ASSERT_TRUE(nn::ReadParams(legacy, &b).ok());
  nn::Matrix x(2, 3, 0.5);
  nn::Matrix ya = a.Forward(x);
  nn::Matrix yb = b.Forward(x);
  for (size_t i = 0; i < ya.size(); ++i) {
    EXPECT_DOUBLE_EQ(ya.data()[i], yb.data()[i]);
  }
}

TEST(ParamsSerializeTest, RejectsFloat32TaggedStream) {
  Rng r1(13), r2(14);
  nn::Sequential a = nn::Sequential::MakeMlp({3, 4, 2}, nn::Activation::kReLU,
                                             nn::Activation::kNone, &r1);
  nn::Sequential b = nn::Sequential::MakeMlp({3, 4, 2}, nn::Activation::kReLU,
                                             nn::Activation::kNone, &r2);
  std::stringstream tagged;
  ASSERT_TRUE(nn::WriteParams(tagged, a).ok());
  std::string text = tagged.str();
  const size_t pos = text.find(" f64\n");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 5, " f32\n");

  std::stringstream narrow(text);
  auto status = nn::ReadParams(narrow, &b);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("dtype mismatch"), std::string::npos)
      << status.message();
}

TEST(ParamsSerializeTest, RejectsUnknownDtypeTag) {
  Rng r1(15), r2(16);
  nn::Sequential a = nn::Sequential::MakeMlp({3, 4, 2}, nn::Activation::kReLU,
                                             nn::Activation::kNone, &r1);
  nn::Sequential b = nn::Sequential::MakeMlp({3, 4, 2}, nn::Activation::kReLU,
                                             nn::Activation::kNone, &r2);
  std::stringstream tagged;
  ASSERT_TRUE(nn::WriteParams(tagged, a).ok());
  std::string text = tagged.str();
  const size_t pos = text.find(" f64\n");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 5, " bf16\n");
  std::stringstream bogus(text);
  EXPECT_FALSE(nn::ReadParams(bogus, &b).ok());
}

TEST(TargAdSerializeTest, SaveLoadReproducesScoresExactly) {
  data::DatasetBundle bundle = targad::testing::TinyBundle(51);
  core::TargADConfig config;
  config.seed = 9;
  config.selection.k = 2;
  config.epochs = 10;
  config.selection.autoencoder.epochs = 10;
  auto model = core::TargAD::Make(config).ValueOrDie();
  TARGAD_CHECK_OK(model.Fit(bundle.train));

  std::stringstream stream;
  ASSERT_TRUE(model.Save(stream).ok());
  auto loaded = core::TargAD::Load(stream).ValueOrDie();
  EXPECT_TRUE(loaded.fitted());
  EXPECT_EQ(loaded.m(), model.m());
  EXPECT_EQ(loaded.k(), model.k());

  const auto original = model.Score(bundle.test.x);
  const auto restored = loaded.Score(bundle.test.x);
  ASSERT_EQ(original.size(), restored.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(original[i], restored[i]);
  }
}

TEST(TargAdSerializeTest, SaveBeforeFitFails) {
  core::TargADConfig config;
  auto model = core::TargAD::Make(config).ValueOrDie();
  std::stringstream stream;
  EXPECT_EQ(model.Save(stream).code(), StatusCode::kFailedPrecondition);
}

TEST(TargAdSerializeTest, LoadRejectsGarbage) {
  std::stringstream empty;
  EXPECT_FALSE(core::TargAD::Load(empty).ok());
  std::stringstream wrong_magic("not-a-model 1 2 3\n");
  EXPECT_FALSE(core::TargAD::Load(wrong_magic).ok());
  std::stringstream truncated("targad-v1\n2 2 10\nhidden 2 64 32\n");
  EXPECT_FALSE(core::TargAD::Load(truncated).ok());
}

}  // namespace
}  // namespace targad
