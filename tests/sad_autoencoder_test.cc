#include "core/sad_autoencoder.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "test_util.h"

namespace targad {
namespace core {
namespace {

struct SadData {
  nn::Matrix normals;
  nn::Matrix anomalies;
  nn::Matrix test_normals;
  nn::Matrix test_anomalies;
};

SadData MakeSadData(uint64_t seed) {
  auto world =
      data::SyntheticWorld::Make(targad::testing::TinyWorldConfig(seed)).ValueOrDie();
  Rng rng(seed);
  data::LabeledPool pool = world.GeneratePool(700, 80, 1, &rng);
  std::vector<size_t> normal_idx, anomaly_idx;
  for (size_t i = 0; i < pool.kind.size(); ++i) {
    if (pool.kind[i] == data::InstanceKind::kNormal) normal_idx.push_back(i);
    if (pool.kind[i] == data::InstanceKind::kTarget) anomaly_idx.push_back(i);
  }
  SadData out;
  out.normals = pool.x.SelectRows(
      {normal_idx.begin(), normal_idx.begin() + 500});
  out.test_normals = pool.x.SelectRows(
      {normal_idx.begin() + 500, normal_idx.begin() + 700});
  out.anomalies = pool.x.SelectRows(
      {anomaly_idx.begin(), anomaly_idx.begin() + 60});
  out.test_anomalies = pool.x.SelectRows(
      {anomaly_idx.begin() + 60, anomaly_idx.end()});
  return out;
}

SadAutoencoderConfig TestConfig(size_t input_dim) {
  SadAutoencoderConfig config;
  config.input_dim = input_dim;
  config.encoder_dims = {16, 6};
  config.epochs = 20;
  config.seed = 9;
  return config;
}

TEST(SadAutoencoderTest, RejectsBadConfigs) {
  SadAutoencoderConfig config = TestConfig(0);
  EXPECT_FALSE(SadAutoencoder::Make(config).ok());
  config = TestConfig(8);
  config.eta = -1.0;
  EXPECT_FALSE(SadAutoencoder::Make(config).ok());
  config = TestConfig(8);
  config.epochs = 0;
  EXPECT_FALSE(SadAutoencoder::Make(config).ok());
  config = TestConfig(8);
  config.encoder_dims.clear();
  EXPECT_FALSE(SadAutoencoder::Make(config).ok());
}

TEST(SadAutoencoderTest, LossDecreasesOverEpochs) {
  SadData d = MakeSadData(1);
  auto sad = SadAutoencoder::Make(TestConfig(d.normals.cols())).ValueOrDie();
  const auto losses = sad.Fit(d.normals, d.anomalies);
  ASSERT_EQ(losses.size(), 20u);
  EXPECT_LT(losses.back(), losses.front());
}

TEST(SadAutoencoderTest, AnomaliesGetHigherReconstructionError) {
  SadData d = MakeSadData(2);
  auto sad = SadAutoencoder::Make(TestConfig(d.normals.cols())).ValueOrDie();
  sad.Fit(d.normals, d.anomalies);

  std::vector<double> scores;
  std::vector<int> labels;
  for (double e : sad.ReconstructionErrors(d.test_normals)) {
    scores.push_back(e);
    labels.push_back(0);
  }
  for (double e : sad.ReconstructionErrors(d.test_anomalies)) {
    scores.push_back(e);
    labels.push_back(1);
  }
  EXPECT_GT(eval::Auroc(scores, labels).ValueOrDie(), 0.8);
}

TEST(SadAutoencoderTest, SadPenaltyImprovesSeparationOverPlainAe) {
  SadData d = MakeSadData(3);

  auto separation = [&](double eta) {
    SadAutoencoderConfig config = TestConfig(d.normals.cols());
    config.eta = eta;
    auto sad = SadAutoencoder::Make(config).ValueOrDie();
    sad.Fit(d.normals, d.anomalies);
    std::vector<double> scores;
    std::vector<int> labels;
    for (double e : sad.ReconstructionErrors(d.test_normals)) {
      scores.push_back(e);
      labels.push_back(0);
    }
    for (double e : sad.ReconstructionErrors(d.test_anomalies)) {
      scores.push_back(e);
      labels.push_back(1);
    }
    return eval::Auroc(scores, labels).ValueOrDie();
  };

  // The inverse-error term must not hurt, and typically helps (Fig. 7(a)
  // shows eta = 0 collapsing).
  EXPECT_GE(separation(1.0) + 0.06, separation(0.0));
}

TEST(SadAutoencoderTest, EtaZeroSkipsLabeledData) {
  SadData d = MakeSadData(4);
  SadAutoencoderConfig config = TestConfig(d.normals.cols());
  config.eta = 0.0;
  auto sad = SadAutoencoder::Make(config).ValueOrDie();
  // Must train fine with an empty labeled matrix.
  const auto losses = sad.Fit(d.normals, nn::Matrix(0, d.normals.cols()));
  EXPECT_EQ(losses.size(), 20u);
  EXPECT_LT(losses.back(), losses.front());
}

}  // namespace
}  // namespace core
}  // namespace targad
