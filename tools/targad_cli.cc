// targad — command-line interface over the library.
//
//   targad generate --profile unsw|kdd|nsl|sqb --scale 0.05 --seed 1 --out P
//       Export a synthetic dataset profile as P_{train,validation,test}.csv.
//   targad train --train T.csv --model M [--label-column label] [--k N]
//                [--alpha A] [--epochs E] [--seed S]
//       Train a TargAdPipeline from a CSV and persist it to M.
//   targad score --model M --in X.csv --out scores.csv
//       Score a CSV with a persisted pipeline (S^tar per row).
//   targad evaluate --scores scores.csv --truth T.csv
//                   [--label-column label] [--target-prefix target_]
//       AUPRC/AUROC of a score file against a labeled CSV.
//   targad freeze --model M --out A.tgz1 [--dtype float64|float32]
//       Freeze a text pipeline into the flat .tgz1 artifact: the serving
//       container that mmap()s straight into an inference plan (no parse,
//       no per-tensor copies). --dtype picks the stored element type.
//   targad inspect --artifact A.tgz1
//       Validate and dump a flat artifact: format version, dtype, section
//       table, meta-blob size. Fails (exit 1) on any corruption the mapped
//       reader would reject — bad magic, bad checksum, truncation.
//   targad serve --model M [--models DIR] [--in X.csv] [--out scores.csv]
//                [--dtype float64|float32] [--batch 64] [--delay-us 200]
//                [--workers 2] [--queue 4096] [--refresh-ms 0]
//                [--tcp PORT] [--bind 127.0.0.1] [--max-conns 1024]
//                [--max-inflight 256] [--max-line 65536] [--idle-ms 0]
//                [--drain-grace-ms 5000] [--warm N]
//       Stream rows (stdin or --in) through the micro-batched scoring
//       service; scores go to stdout or --out, a metrics report to stderr.
//       --dtype float32 freezes published models into the float32 inference
//       plan; float64 (default) serves the full-precision pipeline. --models
//       registers every artifact in DIR; a row may start with a
//       "model=<name>" cell to route to one of them. --refresh-ms N > 0
//       polls every registered artifact's mtime every N milliseconds on a
//       background timer and hot-swaps changed files (zero-downtime
//       redeploy: overwrite the .targad in place and the next batch scores
//       with the new model). --warm N caps the registry's warm tier at N
//       resident models: past the cap the least-recently-served file-backed
//       models are demoted to the cold tier (name + path only) and promoted
//       back — instantly for mmap-ed .tgz1 artifacts — on their next
//       routed row. --tcp PORT serves the line protocol
//       ("SCORE <model> <csv>" -> "OK <score>", see src/net/protocol.h)
//       on a TCP listener instead of stdio; PORT 0 picks an ephemeral port,
//       reported on stderr as "targad: listening on <addr>:<port>".
//       Either mode drains gracefully on SIGTERM/SIGINT: input stops,
//       every in-flight row is scored and written, then the process exits.
//
// Unknown flags are rejected with the subcommand's valid flag list.
// Exit status 0 on success; errors print to stderr.

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "core/frozen_scorer.h"
#include "core/pipeline.h"
#include "data/export.h"
#include "data/profiles.h"
#include "eval/metrics.h"
#include "net/metrics.h"
#include "net/server.h"
#include "nn/artifact.h"
#include "nn/frozen.h"
#include "serve/batch_scorer.h"
#include "serve/metrics.h"
#include "serve/model_registry.h"
#include "serve/stream.h"

using namespace targad;  // NOLINT(build/namespaces)

namespace {

// --flag value parser; flags may appear in any order.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        ok_ = false;
        error_ = "expected --flag, got '" + key + "'";
        return;
      }
      values_[key.substr(2)] = argv[i + 1];
    }
    if ((argc - first) % 2 != 0) {
      ok_ = false;
      error_ = "dangling flag without a value";
    }
  }

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  double GetDouble(const std::string& key, double fallback) const {
    double v = fallback;
    auto it = values_.find(key);
    if (it != values_.end() && !ParseDouble(it->second, &v)) return fallback;
    return v;
  }

  int GetInt(const std::string& key, int fallback) const {
    long v = fallback;  // NOLINT(runtime/int)
    auto it = values_.find(key);
    if (it != values_.end() && !ParseInt(it->second, &v)) return fallback;
    return static_cast<int>(v);
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  /// Flags present but not in `allowed` (sorted, "--"-prefixed).
  std::vector<std::string> Unknown(const std::vector<std::string>& allowed) const {
    std::vector<std::string> out;
    for (const auto& [key, value] : values_) {
      (void)value;
      if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
        out.push_back("--" + key);
      }
    }
    return out;
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
  std::string error_;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: targad <generate|train|score|evaluate|freeze|inspect|serve> "
      "[--flag value]...\n"
      "run with a subcommand and no flags for its options\n");
  return 2;
}

// Valid flags per subcommand; anything else is rejected up front.
const std::map<std::string, std::vector<std::string>>& CommandFlags() {
  static const std::map<std::string, std::vector<std::string>> kFlags = {
      {"generate", {"profile", "scale", "seed", "out"}},
      {"train", {"train", "model", "label-column", "k", "alpha", "epochs",
                 "seed"}},
      {"score", {"model", "in", "out"}},
      {"evaluate", {"scores", "truth", "label-column", "target-prefix"}},
      {"freeze", {"model", "out", "dtype"}},
      {"inspect", {"artifact"}},
      {"serve", {"model", "models", "in", "out", "dtype", "batch", "delay-us",
                 "workers", "queue", "refresh-ms", "tcp", "bind", "max-conns",
                 "max-inflight", "max-line", "idle-ms", "drain-grace-ms",
                 "warm"}},
  };
  return kFlags;
}

int CmdGenerate(const Flags& flags) {
  const std::string which = ToLower(flags.Get("profile", "kdd"));
  const double scale = flags.GetDouble("scale", 0.05);
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 0));
  const std::string out = flags.Get("out", "targad_data");

  data::DatasetProfile profile;
  if (which == "unsw") {
    profile = data::UnswLikeProfile(scale);
  } else if (which == "kdd") {
    profile = data::KddLikeProfile(scale);
  } else if (which == "nsl") {
    profile = data::NslKddLikeProfile(scale);
  } else if (which == "sqb") {
    profile = data::SqbLikeProfile(scale);
  } else {
    return Fail("unknown profile '" + which + "' (unsw|kdd|nsl|sqb)");
  }
  auto bundle = data::MakeBundle(profile, seed);
  if (!bundle.ok()) return Fail(bundle.status().ToString());
  Status st = data::ExportBundleCsv(*bundle, out);
  if (!st.ok()) return Fail(st.ToString());
  std::printf("wrote %s_{train,validation,test}.csv (%s, scale %.2f)\n",
              out.c_str(), bundle->name.c_str(), scale);
  return 0;
}

int CmdTrain(const Flags& flags) {
  const std::string train_path = flags.Get("train");
  const std::string model_path = flags.Get("model");
  if (train_path.empty() || model_path.empty()) {
    return Fail("train requires --train <csv> and --model <path>");
  }
  core::PipelineConfig config;
  config.label_column = flags.Get("label-column", "label");
  config.model.seed = static_cast<uint64_t>(flags.GetInt("seed", 0));
  if (flags.Has("k")) config.model.selection.k = flags.GetInt("k", 0);
  if (flags.Has("alpha")) {
    config.model.selection.alpha = flags.GetDouble("alpha", 0.05);
  }
  if (flags.Has("epochs")) config.model.epochs = flags.GetInt("epochs", 100);

  auto pipeline = core::TargAdPipeline::TrainFromCsv(train_path, config);
  if (!pipeline.ok()) return Fail(pipeline.status().ToString());

  std::ofstream out(model_path);
  if (!out) return Fail("cannot open " + model_path + " for writing");
  Status st = pipeline->Save(out);
  if (!st.ok()) return Fail(st.ToString());
  std::printf("trained on %zu target classes, model written to %s\n",
              pipeline->class_names().size(), model_path.c_str());
  return 0;
}

int CmdScore(const Flags& flags) {
  const std::string model_path = flags.Get("model");
  const std::string in_path = flags.Get("in");
  const std::string out_path = flags.Get("out");
  if (model_path.empty() || in_path.empty() || out_path.empty()) {
    return Fail("score requires --model, --in, and --out");
  }
  std::ifstream model_in(model_path);
  if (!model_in) return Fail("cannot open " + model_path);
  auto pipeline = core::TargAdPipeline::Load(model_in);
  if (!pipeline.ok()) return Fail(pipeline.status().ToString());

  auto scores = pipeline->ScoreCsv(in_path);
  if (!scores.ok()) return Fail(scores.status().ToString());

  std::vector<std::vector<std::string>> rows;
  rows.reserve(scores->size());
  for (double s : *scores) rows.push_back({FormatDouble(s, 6)});
  Status st = data::WriteCsvRows(out_path, {"s_tar"}, rows);
  if (!st.ok()) return Fail(st.ToString());
  std::printf("scored %zu rows -> %s\n", scores->size(), out_path.c_str());
  return 0;
}

int CmdEvaluate(const Flags& flags) {
  const std::string scores_path = flags.Get("scores");
  const std::string truth_path = flags.Get("truth");
  if (scores_path.empty() || truth_path.empty()) {
    return Fail("evaluate requires --scores and --truth");
  }
  const std::string label_column = flags.Get("label-column", "label");
  const std::string target_prefix = flags.Get("target-prefix", "target_");

  auto scores_table = data::ReadCsv(scores_path);
  if (!scores_table.ok()) return Fail(scores_table.status().ToString());
  std::vector<double> scores;
  for (const auto& row : scores_table->rows) {
    double v = 0.0;
    if (row.empty() || !ParseDouble(row[0], &v)) {
      return Fail("non-numeric score row in " + scores_path);
    }
    scores.push_back(v);
  }

  auto truth_table = data::ReadCsv(truth_path);
  if (!truth_table.ok()) return Fail(truth_table.status().ToString());
  int label_col = -1;
  for (size_t j = 0; j < truth_table->num_cols(); ++j) {
    if (truth_table->column_names[j] == label_column) {
      label_col = static_cast<int>(j);
    }
  }
  if (label_col < 0) return Fail("label column '" + label_column + "' not found");
  std::vector<int> labels;
  for (const auto& row : truth_table->rows) {
    const std::string& label = row[static_cast<size_t>(label_col)];
    labels.push_back(label.rfind(target_prefix, 0) == 0 ? 1 : 0);
  }
  if (labels.size() != scores.size()) {
    return Fail("score/truth row count mismatch");
  }
  auto auprc = eval::Auprc(scores, labels);
  auto auroc = eval::Auroc(scores, labels);
  if (!auprc.ok()) return Fail(auprc.status().ToString());
  if (!auroc.ok()) return Fail(auroc.status().ToString());
  std::printf("AUPRC=%.4f AUROC=%.4f (%zu rows, %d positives)\n",
              auprc.ValueOrDie(), auroc.ValueOrDie(), scores.size(),
              static_cast<int>(std::count(labels.begin(), labels.end(), 1)));
  return 0;
}

int CmdFreeze(const Flags& flags) {
  const std::string model_path = flags.Get("model");
  const std::string out_path = flags.Get("out");
  if (model_path.empty() || out_path.empty()) {
    return Fail("freeze requires --model <pipeline> and --out <artifact>");
  }
  auto dtype = nn::ParseDtype(flags.Get("dtype", "float64"));
  if (!dtype.ok()) return Fail(dtype.status().ToString());

  std::ifstream model_in(model_path);
  if (!model_in) return Fail("cannot open " + model_path);
  auto pipeline = core::TargAdPipeline::Load(model_in);
  if (!pipeline.ok()) return Fail(pipeline.status().ToString());
  auto frozen = pipeline->Freeze(*dtype);
  if (!frozen.ok()) return Fail(frozen.status().ToString());
  Status st = frozen->SaveArtifact(out_path);
  if (!st.ok()) return Fail(st.ToString());

  // Re-map what was just written: proves the artifact round-trips through
  // the same validation serving will run, and yields the exact file size.
  auto artifact = nn::MappedArtifact::Map(out_path);
  if (!artifact.ok()) return Fail(artifact.status().ToString());
  std::printf("froze %s -> %s (%s, %zu sections, %zu bytes)\n",
              model_path.c_str(), out_path.c_str(), nn::DtypeName(*dtype),
              (*artifact)->num_sections(), (*artifact)->file_size());
  return 0;
}

int CmdInspect(const Flags& flags) {
  const std::string path = flags.Get("artifact");
  if (path.empty()) return Fail("inspect requires --artifact <file>");
  auto artifact = nn::MappedArtifact::Map(path);
  if (!artifact.ok()) return Fail(artifact.status().ToString());
  const nn::MappedArtifact& a = **artifact;
  const size_t elem = a.dtype() == nn::Dtype::kFloat32 ? 4 : 8;
  std::printf("%s: targad flat artifact v%u\n", path.c_str(), a.version());
  std::printf("  dtype %s, %zu bytes, checksum ok\n", nn::DtypeName(a.dtype()),
              a.file_size());
  std::printf("  meta blob: %zu bytes\n", a.meta().size());
  std::printf("  sections: %zu\n", a.num_sections());
  size_t payload = 0;
  for (size_t i = 0; i < a.num_sections(); ++i) {
    const nn::MappedArtifact::Section& s = a.section(i);
    const size_t bytes = s.rows * s.cols * elem;
    payload += bytes;
    std::printf("    [%2zu] %4zu x %-4zu %8zu bytes\n", i, s.rows, s.cols,
                bytes);
  }
  std::printf("  tensor payload: %zu bytes\n", payload);
  return 0;
}

// SIGTERM/SIGINT drain plumbing. The flag serves the stdio path (polled
// between lines by StreamOptions::should_stop); the self-pipe serves the
// TCP path (the listener polls the read end as Options::drain_fd). Both are
// async-signal-safe: a sig_atomic_t store and a write(2).
volatile std::sig_atomic_t g_stop_requested = 0;
int g_signal_pipe_w = -1;

extern "C" void HandleStopSignal(int /*signo*/) {
  g_stop_requested = 1;
  if (g_signal_pipe_w >= 0) {
    const char byte = 1;
    // The pipe is nonblocking; a full pipe already woke the listener.
    (void)!write(g_signal_pipe_w, &byte, 1);
  }
}

// Blocks SIGTERM/SIGINT on the calling thread. Called in main before any
// worker thread is spawned, so every child inherits the blocked mask and
// delivery is funnelled to the one thread that later unblocks (main). That
// guarantee is what makes the stdio drain reliable: the signal interrupts
// main's blocked getline (EINTR — the handler is installed without
// SA_RESTART) instead of being swallowed by a scorer worker.
void BlockStopSignals() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGTERM);
  sigaddset(&set, SIGINT);
  (void)pthread_sigmask(SIG_BLOCK, &set, nullptr);
}

void InstallStopHandlerAndUnblock() {
  struct sigaction action;
  memset(&action, 0, sizeof(action));
  action.sa_handler = HandleStopSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART: reads must EINTR
  (void)sigaction(SIGTERM, &action, nullptr);
  (void)sigaction(SIGINT, &action, nullptr);
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGTERM);
  sigaddset(&set, SIGINT);
  (void)pthread_sigmask(SIG_UNBLOCK, &set, nullptr);
}

int CmdServe(const Flags& flags) {
  const std::string model_path = flags.Get("model");
  const std::string models_dir = flags.Get("models");
  if (model_path.empty() && models_dir.empty()) {
    return Fail("serve requires --model <path> and/or --models <dir>");
  }
  const bool tcp_mode = flags.Has("tcp");
  const std::string in_path = flags.Get("in");
  const std::string out_path = flags.Get("out");
  if (tcp_mode && (!in_path.empty() || !out_path.empty())) {
    return Fail("--tcp serves sockets; --in/--out apply to the stdio mode");
  }

  auto dtype = nn::ParseDtype(flags.Get("dtype", "float64"));
  if (!dtype.ok()) return Fail(dtype.status().ToString());

  // From here on threads get spawned (scorer workers, refresher, listener);
  // keep stop signals blocked everywhere until the serving thread of the
  // chosen mode is ready to own them.
  BlockStopSignals();

  // The registry is the hot-swap point: a future front-end republishes a
  // retrained artifact under the same name while scoring continues. With
  // --dtype float32 every publish freezes the pipeline into the float32
  // inference plan; GetScorer then serves the frozen snapshot.
  // Declared before the registry so the registry (whose loads/evictions
  // record into it) is destroyed first.
  serve::ServeMetrics metrics;

  serve::ModelRegistry registry;
  registry.set_serve_dtype(*dtype);
  registry.set_metrics(&metrics);
  const int warm = flags.GetInt("warm", 0);
  if (warm < 0 || (flags.Has("warm") && warm == 0)) {
    return Fail("--warm must be a positive integer (resident models)");
  }
  registry.set_warm_capacity(static_cast<size_t>(warm));
  if (!models_dir.empty()) {
    Status st = registry.LoadDirectory(models_dir);
    if (!st.ok()) return Fail(st.ToString());
  }
  if (!model_path.empty()) {
    Status st = registry.PublishFile("default", model_path);
    if (!st.ok()) return Fail(st.ToString());
  }
  auto schema = registry.GetScorer("default");
  if (!schema.ok()) {
    return Fail("serve: no 'default' model; pass --model or put default.targad "
                "in --models");
  }

  // --refresh-ms: background mtime re-poll. Overwriting a registered
  // artifact file while serving hot-swaps it within one interval; rows
  // already submitted keep the snapshot they started with.
  const int refresh_ms = flags.GetInt("refresh-ms", 0);
  if (refresh_ms < 0 || (flags.Has("refresh-ms") && refresh_ms == 0)) {
    return Fail("--refresh-ms must be a positive integer (milliseconds)");
  }
  std::atomic<uint64_t> refresh_polls{0};
  std::atomic<uint64_t> refresh_republished{0};
  std::atomic<uint64_t> refresh_errors{0};
  std::mutex refresh_mu;
  std::condition_variable refresh_cv;
  bool refresh_stop = false;
  std::thread refresher;

  serve::BatchScorerOptions options;
  options.max_batch_size = static_cast<size_t>(flags.GetInt("batch", 64));
  options.max_queue_delay_us = flags.GetInt("delay-us", 200);
  options.num_workers = static_cast<size_t>(flags.GetInt("workers", 2));
  options.max_queue_rows = static_cast<size_t>(flags.GetInt("queue", 4096));

  serve::BatchScorer scorer(
      serve::BatchScorer::NamedSnapshotProvider(
          [&registry](const std::string& name) {
            auto snapshot = registry.GetScorer(name);
            return snapshot.ok() ? *snapshot
                                 : std::shared_ptr<const core::RowScorer>();
          }),
      options, &metrics,
      serve::BatchScorer::ModelLister(
          [&registry] { return registry.ListNames(); }));

  std::ifstream file_in;
  if (!in_path.empty()) {
    file_in.open(in_path);
    if (!file_in) return Fail("cannot open " + in_path);
  }
  std::ofstream file_out;
  if (!out_path.empty()) {
    file_out.open(out_path);
    if (!file_out) return Fail("cannot open " + out_path + " for writing");
  }
  std::istream& in = in_path.empty() ? std::cin : file_in;
  std::ostream& out = out_path.empty() ? std::cout : file_out;

  // Started last — every error path above returns before this thread
  // exists, so no early return can leak a joinable thread.
  if (refresh_ms > 0) {
    refresher = std::thread([&] {
      std::unique_lock<std::mutex> lock(refresh_mu);
      while (!refresh_cv.wait_for(lock, std::chrono::milliseconds(refresh_ms),
                                  [&] { return refresh_stop; })) {
        lock.unlock();
        auto refreshed = registry.RefreshIfChanged();
        refresh_polls.fetch_add(1);
        if (refreshed.ok()) {
          refresh_republished.fetch_add(*refreshed);
        } else {
          refresh_errors.fetch_add(1);
          std::fprintf(stderr, "refresh: %s\n",
                       refreshed.status().ToString().c_str());
        }
        lock.lock();
      }
    });
  }
  auto stop_refresher = [&] {
    if (!refresher.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(refresh_mu);
      refresh_stop = true;
    }
    refresh_cv.notify_all();
    refresher.join();
  };
  auto report_refreshes = [&] {
    if (refresh_ms <= 0) return;
    std::fprintf(stderr,
                 "refreshes: %llu polls, %llu republished, %llu errors\n",
                 static_cast<unsigned long long>(refresh_polls.load()),
                 static_cast<unsigned long long>(refresh_republished.load()),
                 static_cast<unsigned long long>(refresh_errors.load()));
  };

  if (tcp_mode) {
    // SIGTERM/SIGINT reach the listener through a self-pipe: the handler
    // writes one byte, the event loop polls the read end as drain_fd.
    int signal_pipe[2] = {-1, -1};
    if (::pipe2(signal_pipe, O_NONBLOCK | O_CLOEXEC) != 0) {
      scorer.Shutdown();
      stop_refresher();
      return Fail("serve: pipe2 failed");
    }
    g_signal_pipe_w = signal_pipe[1];

    net::TcpServerOptions net_options;
    net_options.bind_address = flags.Get("bind", "127.0.0.1");
    net_options.port = static_cast<uint16_t>(flags.GetInt("tcp", 0));
    net_options.max_connections =
        static_cast<size_t>(flags.GetInt("max-conns", 1024));
    net_options.max_line_bytes =
        static_cast<size_t>(flags.GetInt("max-line", 64 * 1024));
    net_options.max_inflight_rows =
        static_cast<size_t>(flags.GetInt("max-inflight", 256));
    net_options.idle_timeout_ms = flags.GetInt("idle-ms", 0);
    net_options.drain_grace_ms = flags.GetInt("drain-grace-ms", 5000);
    net_options.drain_fd = signal_pipe[0];
    net_options.serve_metrics = &metrics;

    net::NetMetrics net_metrics;
    net::TcpServer server(&scorer, &net_metrics, net_options);
    Status st = server.Start();
    if (!st.ok()) {
      g_signal_pipe_w = -1;
      ::close(signal_pipe[0]);
      ::close(signal_pipe[1]);
      scorer.Shutdown();
      stop_refresher();
      return Fail(st.ToString());
    }
    // The port line is the startup handshake scripts wait for (and the only
    // way to learn an ephemeral --tcp 0 port).
    std::fprintf(stderr, "targad: listening on %s:%u\n",
                 net_options.bind_address.c_str(),
                 static_cast<unsigned>(server.port()));
    InstallStopHandlerAndUnblock();
    server.Wait();
    std::fprintf(stderr, "targad: drained, shutting down\n");
    scorer.Shutdown();
    stop_refresher();
    g_signal_pipe_w = -1;
    ::close(signal_pipe[0]);
    ::close(signal_pipe[1]);
    report_refreshes();
    std::fprintf(stderr, "%s", net_metrics.Report().c_str());
    std::fprintf(stderr, "%s", metrics.Report().c_str());
    return 0;
  }

  // stdio mode: signals drain through StreamOptions::should_stop — the
  // handler's flag store is observed either at the next between-lines poll
  // or when the signal EINTRs the blocked read.
  InstallStopHandlerAndUnblock();
  serve::StreamOptions stream_options;
  stream_options.should_stop = [] { return g_stop_requested != 0; };
  auto stats =
      serve::ScoreCsvStream(**schema, &scorer, in, out, stream_options);
  scorer.Shutdown();
  stop_refresher();
  if (!stats.ok()) return Fail(stats.status().ToString());
  std::fprintf(stderr,
               "served %zu rows (%zu scored, %zu failed, %zu routed, "
               "dtype %s)\n",
               stats->rows_in, stats->rows_scored, stats->rows_failed,
               stats->rows_routed, nn::DtypeName(*dtype));
  if (stats->stopped_early) {
    std::fprintf(stderr,
                 "drain: stopped early on signal, all in-flight rows "
                 "resolved\n");
  }
  report_refreshes();
  std::fprintf(stderr, "%s", metrics.Report().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags(argc, argv, 2);
  if (!flags.ok()) return Fail(flags.error());

  const auto& command_flags = CommandFlags();
  auto it = command_flags.find(command);
  if (it == command_flags.end()) return Usage();
  const std::vector<std::string> unknown = flags.Unknown(it->second);
  if (!unknown.empty()) {
    std::string valid;
    for (const std::string& flag : it->second) valid += " --" + flag;
    return Fail("unknown flag " + unknown.front() + " for '" + command +
                "' (valid:" + valid + ")");
  }

  if (command == "generate") return CmdGenerate(flags);
  if (command == "train") return CmdTrain(flags);
  if (command == "score") return CmdScore(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "freeze") return CmdFreeze(flags);
  if (command == "inspect") return CmdInspect(flags);
  if (command == "serve") return CmdServe(flags);
  return Usage();
}
