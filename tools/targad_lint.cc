// targad-lint: project-rule source checker for things the compiler cannot
// see. v5 is built on a real C++ lexer (tools/lint/lexer.h): comments,
// string/char literals, raw strings, and preprocessor lines are tokenized
// once (with universal phase-2 line splicing), and every rule runs over
// token-derived views — so prose in a comment or a raw string can never
// trip a rule, and the allow() escape hatch reads actual comment tokens.
//
// Per-file rules (tools/lint/driver.cc):
//
//   include-guard          .h guard must be TARGAD_<PATH>_H_ (path relative
//                          to the repo layout, uppercased, non-alnum -> '_'),
//                          with a matching #define and a closing #endif.
//   using-namespace-header no `using namespace` in headers.
//   banned-rand            no rand()/srand() in library code — randomness
//                          goes through common/rng.h for reproducibility.
//   banned-io              no std::cout/std::cerr/printf/fprintf logging in
//                          library code — use TARGAD_LOG (snprintf-style
//                          pure formatting is fine).
//   naked-throw            no `throw` — the library is exception-free at
//                          its boundaries; fallible APIs return Status.
//   return-not-ok-result   TARGAD_RETURN_NOT_OK takes a Status expression;
//                          applying it to a Result<T>-returning call (or a
//                          ValueOrDie() value) swallows or miscasts the
//                          error.
//   mutex-guarded-by       in a header, every member field declared after a
//                          mutex member must carry TARGAD_GUARDED_BY.
//   raw-mutex-lock         no .lock()/.unlock()/.try_lock() on a mutex-
//                          named receiver — locking goes through MutexLock.
//   lock-rank-table        TARGAD_LOCK_RANK_TABLE entries must have unique
//                          names and unique integer ranks.
//   raw-dense-loop         no hand-rolled dense math outside nn/kernels/.
//
// Include-tree passes:
//
//   include-layering       the module DAG (tools/lint/layering.cc): a file
//                          may only include modules at the same or a lower
//                          layer of common -> nn -> data -> cluster -> eval
//                          -> core -> baselines -> serve -> net -> aux.
//   include-cycle          no include cycles among scanned files.
//   include-cc             no #include of .cc/.cpp files.
//   unused-include         IWYU-lite: a project header none of whose
//                          symbols appear in the including TU (src/ only;
//                          `// IWYU pragma: keep|export` exempts a line).
//                          Macro invocations count as uses.
//
// Whole-program passes new in v5 (tools/lint/symbols.cc extracts per-file
// symbols, tools/lint/graph.cc links the cross-TU call graph and runs):
//
//   lock-order             static rank-ordering over the lock table in
//                          common/lock_rank.h: a function may not acquire a
//                          rank <= one already held, where "held" merges
//                          active MutexLock guards, TARGAD_REQUIRES entry
//                          annotations, and ranks propagated transitively
//                          through resolvable calls (TARGAD_ACQUIRE
//                          declares an acquisition the body delegates).
//   hot-path-*             the purity contract (common/hot_path.h) enforced
//                          over full call-graph reachability from every
//                          TARGAD_HOT_PATH function, across translation
//                          units; TARGAD_HOT_PATH_TRUSTED marks an audited
//                          leaf where traversal stops.
//   poll-thread-block      nothing reachable from a TARGAD_POLL_THREAD
//   poll-thread-lock       event-loop root may block, take a lock outside
//   poll-thread-alloc-loop the kNetSession/kNetReady ranks, or grow a
//                          buffer inside the unbounded loop without a
//                          per-iteration reset.
//
// Library-code rules (banned-*, naked-throw, return-not-ok-result, mutex-
// guarded-by, raw-mutex-lock, raw-dense-loop) apply to the src/ modules;
// tools/, bench/, tests/, and examples/ are leaf consumers where printf
// tables and hand-rolled reference kernels are the point. lock-order and
// the poll-thread-* rules also scope to src/ (tests seed inversions on
// purpose); the hot-path purity contract applies everywhere scanned.
//
// Escape hatch: a `// targad-lint: allow(<rule>[,<rule>...])` comment on
// the offending line or the line directly above suppresses those rules for
// that line (`allow(*)` suppresses everything).
//
// Usage:
//   targad_lint --root <dir> [path...]   scan (default path: the root)
//   targad_lint --analyze                run ONLY the whole-program passes
//                                        (lock-order, transitive purity,
//                                        poll-thread reachability)
//   targad_lint --format=github          emit findings as GitHub Actions
//                                        workflow annotations
//   targad_lint --self-test              seed violations in a temp tree and
//                                        assert every rule fires (and that
//                                        allow() suppresses); exits 0/1.
//
// Exit status: 0 clean, 1 findings (or self-test failure), 2 usage error.

#include <cstdio>
#include <string>
#include <vector>

#include "tools/lint/driver.h"
#include "tools/lint/layering.h"
#include "tools/lint/selftest.h"

int main(int argc, char** argv) {
  std::string root;
  std::vector<std::string> paths;
  targad::lint::LintOptions options;
  bool github = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") return targad::lint::RunSelfTest();
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "targad_lint: --root needs a directory\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--analyze") {
      options.per_file = false;
      options.analyze = true;
    } else if (arg == "--format=github") {
      github = true;
    } else if (arg == "--help") {
      std::fprintf(stderr,
                   "usage: targad_lint --root <dir> [--analyze] "
                   "[--format=github] [path...] | --self-test\n");
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (root.empty()) {
    std::fprintf(stderr, "targad_lint: --root <dir> is required\n");
    return 2;
  }
  if (paths.empty()) paths.push_back(root);

  const std::vector<targad::lint::Finding> findings =
      targad::lint::RunLint(root, paths, options);
  for (const targad::lint::Finding& f : findings) {
    if (github) {
      // GitHub Actions workflow-command annotation format; shows up inline
      // on the PR diff. Findings carry include-path-form paths (relative to
      // --root, i.e. src/), so restore the workspace-relative prefix for
      // library modules — aux trees (tools/ tests/ ...) are already
      // repo-relative.
      std::string file = f.file;
      if (targad::lint::IsSrcModule(targad::lint::ModuleOf(file))) {
        file = "src/" + file;
      }
      std::printf("::error file=%s,line=%d,title=targad-lint %s::[%s] %s\n",
                  file.c_str(), f.line, f.rule.c_str(), f.rule.c_str(),
                  f.message.c_str());
    } else {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "targad_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
