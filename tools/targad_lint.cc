// targad-lint: project-rule source checker for things the compiler cannot
// see. Scans .h/.cc files and reports violations of:
//
//   include-guard          .h guard must be TARGAD_<PATH>_H_ (path relative
//                          to --root, uppercased, non-alnum -> '_'), with a
//                          matching #define and a closing #endif.
//   using-namespace-header no `using namespace` in headers.
//   banned-rand            no rand()/srand() in library code — randomness
//                          goes through common/rng.h for reproducibility.
//   banned-io              no std::cout/std::cerr/printf/fprintf logging in
//                          library code — use TARGAD_LOG (snprintf-style
//                          pure formatting is fine).
//   naked-throw            no `throw` — the library is exception-free at
//                          its boundaries; fallible APIs return Status.
//   return-not-ok-result   TARGAD_RETURN_NOT_OK takes a Status expression;
//                          applying it to a Result<T>-returning call (or a
//                          ValueOrDie() value) swallows or miscasts the
//                          error.
//   mutex-guarded-by       in a header, every member field declared after a
//                          mutex member (RankedMutex / std::mutex) must
//                          carry TARGAD_GUARDED_BY — the project convention
//                          is mutex first, guarded fields below it, and
//                          unguarded (ctor-immutable / externally
//                          serialized) fields above it. Condition
//                          variables, atomics, other mutexes, and
//                          static/constexpr/const declarations are exempt.
//   raw-mutex-lock         no .lock()/.unlock()/.try_lock() calls on a
//                          mutex-named receiver (…mu_, …_mu, …mutex…) —
//                          locking goes through RAII guards (MutexLock),
//                          which Clang's thread-safety analysis can track.
//   lock-rank-table        the TARGAD_LOCK_RANK_TABLE entries must have
//                          unique names and unique integer ranks (unique
//                          ranks are a total order, so the acquire-
//                          ascending policy is acyclic by construction).
//   raw-dense-loop         no hand-rolled dense math: a multiply-accumulate
//                          line (`+=` with a `*` on the right) that indexes
//                          two or more subscripted operands inside >= 2
//                          nested `for` loops is a matmul/distance kernel
//                          written by hand — route it through the
//                          nn/kernels primitives (Gemm,
//                          FusedAffineActivation, SquaredDistances, Axpy).
//                          Files under nn/kernels/ are exempt (they ARE the
//                          kernel layer).
//
// Escape hatch: a `// targad-lint: allow(<rule>[,<rule>...])` comment on
// the offending line or the line directly above suppresses those rules for
// that line (`allow(*)` suppresses everything).
//
// Usage:
//   targad_lint --root <dir> [path...]   scan (default path: the root)
//   targad_lint --self-test              seed violations in a temp tree and
//                                        assert every rule fires (and that
//                                        allow() suppresses); exits 0/1.
//
// Comments and string/character literals are blanked before matching, so
// prose about rand() or a "printf(" inside a string never trips a rule.
// Exit status: 0 clean, 1 findings (or self-test failure), 2 usage error.

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------------
// Source preparation
// ---------------------------------------------------------------------------

// Replaces comments and string/char literal contents with spaces, keeping
// line structure (and therefore line numbers) intact.
std::string StripCommentsAndStrings(const std::string& src) {
  std::string out = src;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kString;  // Keep the quote: tokens stay delimited.
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Finds `word` in `line` as a whole identifier (no word char on either
// side). Returns npos if absent.
size_t FindWord(const std::string& line, const std::string& word,
                size_t from = 0) {
  size_t pos = line.find(word, from);
  while (pos != std::string::npos) {
    const bool left_ok = pos == 0 || !IsWordChar(line[pos - 1]);
    const size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || !IsWordChar(line[end]);
    if (left_ok && right_ok) return pos;
    pos = line.find(word, pos + 1);
  }
  return std::string::npos;
}

// True when `word` at `pos` is followed (after spaces) by an open paren —
// i.e. it is spelled as a call.
bool IsCallAt(const std::string& line, size_t pos, const std::string& word) {
  size_t i = pos + word.size();
  while (i < line.size() && line[i] == ' ') ++i;
  return i < line.size() && line[i] == '(';
}

// ---------------------------------------------------------------------------
// The checker
// ---------------------------------------------------------------------------

class Linter {
 public:
  explicit Linter(fs::path root) : root_(std::move(root)) {}

  /// First pass over every file: collect the names of functions declared to
  /// return Result<...> (and, separately, Status) for the
  /// return-not-ok-result heuristic. A name declared with BOTH return types
  /// somewhere in the tree is ambiguous (an overload set like Fit) and is
  /// never flagged.
  void CollectResultFunctions(const std::string& clean) {
    const std::vector<std::string> lines = SplitLines(clean);
    for (size_t i = 0; i < lines.size(); ++i) {
      const std::string& line = lines[i];
      size_t pos = FindWord(line, "Result");
      while (pos != std::string::npos) {
        size_t j = pos + 6;
        if (j < line.size() && line[j] == '<') {
          // Skip the template argument list (angle-bracket balanced).
          int depth = 0;
          while (j < line.size()) {
            if (line[j] == '<') ++depth;
            if (line[j] == '>' && --depth == 0) { ++j; break; }
            ++j;
          }
          CollectDeclaredName(lines, i, line.substr(std::min(j, line.size())),
                              &result_functions_);
        }
        pos = FindWord(line, "Result", pos + 1);
      }
      size_t spos = FindWord(line, "Status");
      while (spos != std::string::npos) {
        CollectDeclaredName(lines, i, line.substr(spos + 6),
                            &status_functions_);
        spos = FindWord(line, "Status", spos + 1);
      }
    }
  }

  void CheckFile(const fs::path& path, const std::string& raw,
                 const std::string& clean) {
    const std::vector<std::string> raw_lines = SplitLines(raw);
    const std::vector<std::string> clean_lines = SplitLines(clean);
    const std::string rel = Relative(path);
    const bool is_header = path.extension() == ".h";

    if (is_header) CheckIncludeGuard(rel, clean_lines, raw_lines);

    for (size_t i = 0; i < clean_lines.size(); ++i) {
      const std::string& line = clean_lines[i];
      const int ln = static_cast<int>(i) + 1;

      if (is_header && FindWord(line, "using") != std::string::npos) {
        const size_t u = FindWord(line, "using");
        const size_t n = FindWord(line, "namespace", u);
        if (n != std::string::npos &&
            line.find_first_not_of(' ', u + 5) == n) {
          Report(rel, ln, raw_lines, "using-namespace-header",
                 "`using namespace` in a header leaks into every includer");
        }
      }

      for (const char* fn : {"rand", "srand"}) {
        const size_t pos = FindWord(line, fn);
        if (pos != std::string::npos && IsCallAt(line, pos, fn)) {
          Report(rel, ln, raw_lines, "banned-rand",
                 std::string(fn) +
                     "() is banned; use common/rng.h (seeded, reproducible)");
        }
      }

      for (const char* io : {"printf", "fprintf"}) {
        const size_t pos = FindWord(line, io);
        if (pos != std::string::npos && IsCallAt(line, pos, io)) {
          Report(rel, ln, raw_lines, "banned-io",
                 std::string(io) + "() logging is banned; use TARGAD_LOG");
        }
      }
      for (const char* stream : {"std::cout", "std::cerr"}) {
        if (line.find(stream) != std::string::npos) {
          Report(rel, ln, raw_lines, "banned-io",
                 std::string(stream) + " logging is banned; use TARGAD_LOG");
        }
      }

      if (FindWord(line, "throw") != std::string::npos) {
        Report(rel, ln, raw_lines, "naked-throw",
               "`throw` is banned; fallible APIs return Status/Result");
      }

      CheckReturnNotOk(rel, ln, line, raw_lines);
      CheckRawMutexLock(rel, ln, line, raw_lines);
    }

    if (is_header) CheckMutexGuardedBy(rel, clean_lines, raw_lines);
    CheckLockRankTable(rel, clean_lines, raw_lines);
    CheckRawDenseLoop(rel, clean_lines, raw_lines);
  }

  const std::vector<Finding>& findings() const { return findings_; }

 private:
  // Records the identifier a return type is declaring, given the text after
  // the type on that line (or, when the type sits on its own line, the next
  // line). The name must be an identifier immediately followed by '('.
  static void CollectDeclaredName(const std::vector<std::string>& lines,
                                  size_t i, std::string rest,
                                  std::set<std::string>* out) {
    if (rest.find_first_not_of(' ') == std::string::npos &&
        i + 1 < lines.size()) {
      rest = lines[i + 1];
    }
    const size_t k = rest.find_first_not_of(' ');
    if (k == std::string::npos || !IsWordChar(rest[k]) ||
        std::isdigit(static_cast<unsigned char>(rest[k]))) {
      return;
    }
    size_t e = k;
    while (e < rest.size() && IsWordChar(rest[e])) ++e;
    size_t p = e;
    while (p < rest.size() && rest[p] == ' ') ++p;
    if (p < rest.size() && rest[p] == '(') out->insert(rest.substr(k, e - k));
  }

  std::string Relative(const fs::path& path) const {
    std::error_code ec;
    const fs::path rel = fs::relative(path, root_, ec);
    return (ec || rel.empty()) ? path.generic_string() : rel.generic_string();
  }

  static std::string ExpectedGuard(const std::string& rel) {
    std::string macro = "TARGAD_";
    for (const char c : rel) {
      macro += IsWordChar(c)
                   ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                   : '_';
    }
    return macro + "_";  // common/status.h -> TARGAD_COMMON_STATUS_H_
  }

  void CheckIncludeGuard(const std::string& rel,
                         const std::vector<std::string>& clean_lines,
                         const std::vector<std::string>& raw_lines) {
    const std::string expected = ExpectedGuard(rel);
    int ifndef_line = 0;
    std::string got;
    for (size_t i = 0; i < clean_lines.size(); ++i) {
      std::istringstream in(clean_lines[i]);
      std::string tok, macro;
      in >> tok;
      if (tok.empty() || tok[0] != '#') continue;
      if (tok != "#ifndef") break;  // Some other directive came first.
      in >> macro;
      ifndef_line = static_cast<int>(i) + 1;
      got = macro;
      // The next preprocessor token must be the matching #define.
      for (size_t j = i + 1; j < clean_lines.size(); ++j) {
        std::istringstream in2(clean_lines[j]);
        std::string tok2, macro2;
        in2 >> tok2;
        if (tok2.empty() || tok2[0] != '#') continue;
        if (tok2 != "#define") got.clear();
        in2 >> macro2;
        if (macro2 != got) got.clear();
        break;
      }
      break;
    }
    if (got != expected) {
      Report(rel, std::max(ifndef_line, 1), raw_lines, "include-guard",
             "expected include guard " + expected +
                 (got.empty() ? " (missing or #define mismatch)"
                              : ", found " + got));
    }
  }

  void CheckReturnNotOk(const std::string& rel, int ln,
                        const std::string& line,
                        const std::vector<std::string>& raw_lines) {
    const size_t pos = FindWord(line, "TARGAD_RETURN_NOT_OK");
    if (pos == std::string::npos) return;
    // Skip the macro's own definition.
    if (line.find("#define") != std::string::npos) return;
    const size_t open = line.find('(', pos);
    if (open == std::string::npos) return;
    // The argument may run past this line; a line-bounded window is enough
    // for the heuristics below.
    const std::string arg = line.substr(open + 1);
    if (arg.find("ValueOrDie") != std::string::npos) {
      Report(rel, ln, raw_lines, "return-not-ok-result",
             "TARGAD_RETURN_NOT_OK on a ValueOrDie() value — it takes a "
             "Status; use TARGAD_ASSIGN_OR_RETURN");
      return;
    }
    // `expr.status()` adapts a Result to its Status — always legal.
    if (arg.find(".status()") != std::string::npos) return;
    for (const std::string& fn : result_functions_) {
      if (status_functions_.count(fn) > 0) continue;  // Ambiguous overload.
      const size_t fp = FindWord(arg, fn);
      if (fp != std::string::npos && IsCallAt(arg, fp, fn)) {
        Report(rel, ln, raw_lines, "return-not-ok-result",
               "TARGAD_RETURN_NOT_OK on Result-returning " + fn +
                   "(); use TARGAD_ASSIGN_OR_RETURN");
        return;
      }
    }
  }

  // True when `name` reads as a mutex: `mu`, a `mu_`/`_mu` prefix/suffix
  // convention, or "mutex" anywhere (case-insensitive).
  static bool LooksLikeMutexName(const std::string& name) {
    if (name == "mu" || name == "mu_") return true;
    auto ends_with = [&](const char* suffix) {
      const size_t n = std::strlen(suffix);
      return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
    };
    if (ends_with("mu_") || ends_with("_mu")) return true;
    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(), [](char c) {
      return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    });
    return lower.find("mutex") != std::string::npos;
  }

  // raw-mutex-lock: .lock()/.unlock()/.try_lock() spelled directly on a
  // mutex-named receiver. RAII guards (MutexLock) are the only blessed way
  // to lock — they are what Clang's thread-safety analysis can follow, and
  // what the rank checker instruments. Calls on non-mutex receivers (e.g. a
  // MutexLock named `lock`) are fine.
  void CheckRawMutexLock(const std::string& rel, int ln,
                         const std::string& line,
                         const std::vector<std::string>& raw_lines) {
    for (const char* method : {"lock", "unlock", "try_lock"}) {
      size_t pos = FindWord(line, method);
      while (pos != std::string::npos) {
        if (IsCallAt(line, pos, method)) {
          size_t recv_end = std::string::npos;
          if (pos >= 1 && line[pos - 1] == '.') {
            recv_end = pos - 1;
          } else if (pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>') {
            recv_end = pos - 2;
          }
          if (recv_end != std::string::npos) {
            size_t recv_begin = recv_end;
            while (recv_begin > 0 && IsWordChar(line[recv_begin - 1])) {
              --recv_begin;
            }
            const std::string recv =
                line.substr(recv_begin, recv_end - recv_begin);
            if (!recv.empty() && LooksLikeMutexName(recv)) {
              Report(rel, ln, raw_lines, "raw-mutex-lock",
                     recv + "." + method +
                         "() bypasses RAII locking; hold mutexes via "
                         "MutexLock (common/lock_rank.h)");
            }
          }
        }
        pos = FindWord(line, method, pos + 1);
      }
    }
  }

  // mutex-guarded-by: inside a class body, every member field declared
  // BELOW a mutex member must carry TARGAD_GUARDED_BY. The project
  // convention is: mutex first, its guarded fields directly below it;
  // unguarded fields (ctor-immutable configuration, externally serialized
  // state) go ABOVE the mutex. Exempt: condition variables (waiting is not
  // guarded state), atomics (their own synchronization), other mutexes,
  // and static/constexpr/const/using/typedef/friend declarations.
  void CheckMutexGuardedBy(const std::string& rel,
                           const std::vector<std::string>& clean_lines,
                           const std::vector<std::string>& raw_lines) {
    bool in_mutex_scope = false;
    for (size_t i = 0; i < clean_lines.size(); ++i) {
      const std::string& line = clean_lines[i];
      const size_t first = line.find_first_not_of(" \t");
      if (first == std::string::npos) continue;
      if (line.compare(first, 2, "};") == 0) {
        in_mutex_scope = false;  // End of the (possibly nested) class body.
        continue;
      }
      const size_t last = line.find_last_not_of(" \t");
      const bool is_mutex_decl =
          (FindWord(line, "RankedMutex") != std::string::npos ||
           line.find("std::mutex") != std::string::npos) &&
          line.find('*') == std::string::npos &&
          line.find('&') == std::string::npos &&
          line.find('(') == std::string::npos &&
          last != std::string::npos && line[last] == ';';
      if (is_mutex_decl) {
        in_mutex_scope = true;
        continue;
      }
      if (!in_mutex_scope) continue;
      if (line.find("TARGAD_GUARDED_BY") != std::string::npos ||
          line.find("TARGAD_PT_GUARDED_BY") != std::string::npos ||
          line.find("condition_variable") != std::string::npos ||
          line.find("std::atomic") != std::string::npos ||
          FindWord(line, "static") != std::string::npos ||
          FindWord(line, "constexpr") != std::string::npos ||
          FindWord(line, "using") != std::string::npos ||
          FindWord(line, "typedef") != std::string::npos ||
          FindWord(line, "friend") != std::string::npos ||
          line.compare(first, 6, "const ") == 0) {
        continue;
      }
      const std::string field = FieldNameIfDecl(line);
      if (!field.empty()) {
        Report(rel, static_cast<int>(i) + 1, raw_lines, "mutex-guarded-by",
               "member `" + field +
                   "` is declared below a mutex but lacks "
                   "TARGAD_GUARDED_BY; unguarded fields go above the mutex");
      }
    }
  }

  // Returns the member field a line declares — an identifier ending in `_`
  // whose next non-space character is `;`, `=`, or `{` — or "" when the
  // line does not read as a field declaration. Method declarations never
  // match: method names do not end in `_`, and a trailing annotation
  // argument like EXCLUDES(mu_) leaves `mu_` followed by `)`.
  static std::string FieldNameIfDecl(const std::string& line) {
    for (size_t i = 0; i < line.size();) {
      if (!IsWordChar(line[i])) {
        ++i;
        continue;
      }
      size_t end = i;
      while (end < line.size() && IsWordChar(line[end])) ++end;
      if (line[end - 1] == '_') {
        size_t k = end;
        while (k < line.size() && line[k] == ' ') ++k;
        if (k < line.size() &&
            (line[k] == ';' || line[k] == '=' || line[k] == '{')) {
          return line.substr(i, end - i);
        }
      }
      i = end;
    }
    return std::string();
  }

  // lock-rank-table: parses every `#define TARGAD_LOCK_RANK_TABLE` X-macro
  // body and reports duplicate lock names and duplicate integer ranks.
  // Unique integer ranks form a total order, which makes the runtime
  // acquire-ascending policy acyclic by construction — a duplicate rank
  // would let two locks be taken in either order without detection.
  void CheckLockRankTable(const std::string& rel,
                          const std::vector<std::string>& clean_lines,
                          const std::vector<std::string>& raw_lines) {
    for (size_t i = 0; i < clean_lines.size(); ++i) {
      if (clean_lines[i].find("#define") == std::string::npos ||
          clean_lines[i].find("TARGAD_LOCK_RANK_TABLE") == std::string::npos) {
        continue;
      }
      std::map<std::string, int> name_line;       // entry name -> first line
      std::map<long, std::string> rank_owner;     // rank value -> first name
      size_t j = i;
      bool continued = true;
      while (j < clean_lines.size() && continued) {
        const std::string& l = clean_lines[j];
        const size_t last = l.find_last_not_of(" \t");
        continued = last != std::string::npos && l[last] == '\\';
        const int ln = static_cast<int>(j) + 1;
        size_t p = 0;
        while ((p = FindWord(l, "X", p)) != std::string::npos) {
          const size_t open = p + 1;
          ++p;
          if (open >= l.size() || l[open] != '(') continue;
          size_t k = l.find_first_not_of(' ', open + 1);
          if (k == std::string::npos || !IsWordChar(l[k])) continue;
          size_t name_end = k;
          while (name_end < l.size() && IsWordChar(l[name_end])) ++name_end;
          const std::string name = l.substr(k, name_end - k);
          size_t v = l.find_first_not_of(" ,", name_end);
          if (v == std::string::npos) continue;
          size_t v_end = v;
          if (v_end < l.size() && l[v_end] == '-') ++v_end;
          while (v_end < l.size() &&
                 std::isdigit(static_cast<unsigned char>(l[v_end]))) {
            ++v_end;
          }
          if (v_end == v || v_end >= l.size() || l[v_end] != ')') continue;
          const long value = std::stol(l.substr(v, v_end - v));
          if (!name_line.emplace(name, ln).second) {
            Report(rel, ln, raw_lines, "lock-rank-table",
                   "duplicate lock-rank entry `" + name + "`");
          }
          const auto [owner, inserted] = rank_owner.emplace(value, name);
          if (!inserted && owner->second != name) {
            Report(rel, ln, raw_lines, "lock-rank-table",
                   "rank " + std::to_string(value) + " assigned to both `" +
                       owner->second + "` and `" + name +
                       "`; ranks must be unique (a total order is what "
                       "makes acquire-ascending deadlock-free)");
          }
        }
        ++j;
      }
      i = j - 1;
    }
  }

  // raw-dense-loop: flags multiply-accumulate lines over subscripted
  // operands inside >= 2 nested `for` loops — the signature of a matmul /
  // distance computation written by hand instead of through nn/kernels.
  //
  // The nesting tracker is character-level: it follows brace depth and a
  // stack of for-scopes, handling both braced bodies (popped when their
  // closing brace arrives) and braceless bodies (popped at the next `;` at
  // parenthesis depth zero — a chain of braceless `for`s collapses at one
  // statement). A line fires when, at any point on it, the for-stack is at
  // least two deep AND it contains `+=` whose right-hand side multiplies
  // (`*`) AND it references two or more subscripted operands (`x[...]` or
  // `At(...)`). Single-subscript accumulations over a hoisted scalar
  // (`var[j] += r * diff * diff`) stay legal: one indexed operand is a
  // weighted reduction, not a dense kernel.
  void CheckRawDenseLoop(const std::string& rel,
                         const std::vector<std::string>& clean_lines,
                         const std::vector<std::string>& raw_lines) {
    if (rel.find("nn/kernels/") != std::string::npos) return;
    struct ForScope {
      bool braced = false;
      int body_brace_depth = 0;
    };
    std::vector<ForScope> stack;
    int brace_depth = 0;
    int paren_depth = 0;
    int header_depth = -1;  // Paren depth inside a pending for-header, or -1.
    bool awaiting_body = false;
    for (size_t i = 0; i < clean_lines.size(); ++i) {
      const std::string& line = clean_lines[i];
      size_t max_for_depth = stack.size();
      for (size_t p = 0; p < line.size(); ++p) {
        const char c = line[p];
        if (awaiting_body && c != ' ' && c != '\t') {
          awaiting_body = false;
          if (c == '{') {
            stack.back().braced = true;
            stack.back().body_brace_depth = ++brace_depth;
            continue;
          }
          // Braceless body: the scope pops at the statement-ending `;`.
        }
        if (IsWordChar(c)) {
          size_t e = p;
          while (e < line.size() && IsWordChar(line[e])) ++e;
          if (e - p == 3 && line.compare(p, 3, "for") == 0 &&
              header_depth == -1) {
            const size_t q = line.find_first_not_of(' ', e);
            if (q != std::string::npos && line[q] == '(') {
              header_depth = paren_depth + 1;  // Depth once '(' is consumed.
            }
          }
          p = e - 1;
          continue;
        }
        if (c == '(') {
          ++paren_depth;
          continue;
        }
        if (c == ')') {
          --paren_depth;
          if (header_depth != -1 && paren_depth < header_depth) {
            header_depth = -1;
            awaiting_body = true;
            stack.push_back(ForScope{});
            max_for_depth = std::max(max_for_depth, stack.size());
          }
          continue;
        }
        if (c == '{') {
          ++brace_depth;
          continue;
        }
        if (c == '}') {
          --brace_depth;
          while (!stack.empty() && stack.back().braced &&
                 stack.back().body_brace_depth > brace_depth) {
            stack.pop_back();
            // A braceless parent's body was that braced statement.
            while (!stack.empty() && !stack.back().braced) stack.pop_back();
          }
          continue;
        }
        if (c == ';' && paren_depth == 0 && header_depth == -1) {
          while (!stack.empty() && !stack.back().braced) stack.pop_back();
          continue;
        }
      }
      if (max_for_depth < 2) continue;
      const size_t plus_eq = line.find("+=");
      if (plus_eq == std::string::npos) continue;
      // A `*` at subscript/argument depth is index arithmetic
      // (`a[i * n + j]`), not a value multiply; only a top-level `*` on the
      // right-hand side makes this a multiply-accumulate.
      bool multiplies = false;
      int rhs_depth = 0;
      for (size_t p = plus_eq + 2; p < line.size(); ++p) {
        if (line[p] == '[' || line[p] == '(') ++rhs_depth;
        if (line[p] == ']' || line[p] == ')') --rhs_depth;
        if (line[p] == '*' && rhs_depth == 0) {
          multiplies = true;
          break;
        }
      }
      if (!multiplies) continue;
      size_t subscripts = 0;
      for (size_t p = 1; p < line.size(); ++p) {
        if (line[p] == '[' &&
            (IsWordChar(line[p - 1]) || line[p - 1] == ']' ||
             line[p - 1] == ')')) {
          ++subscripts;
        }
      }
      size_t at_pos = FindWord(line, "At");
      while (at_pos != std::string::npos) {
        if (IsCallAt(line, at_pos, "At")) ++subscripts;
        at_pos = FindWord(line, "At", at_pos + 1);
      }
      if (subscripts < 2) continue;
      Report(rel, static_cast<int>(i) + 1, raw_lines, "raw-dense-loop",
             "multiply-accumulate over subscripted operands inside nested "
             "loops — use the nn/kernels primitives (Gemm, "
             "FusedAffineActivation, SquaredDistances, Axpy)");
    }
  }

  // Applies the allow() escape hatch, then records the finding.
  void Report(const std::string& rel, int ln,
              const std::vector<std::string>& raw_lines,
              const std::string& rule, const std::string& message) {
    for (int l : {ln, ln - 1}) {
      if (l < 1 || l > static_cast<int>(raw_lines.size())) continue;
      const std::string& raw = raw_lines[static_cast<size_t>(l - 1)];
      const size_t a = raw.find("targad-lint: allow(");
      if (a == std::string::npos) continue;
      const size_t start = a + std::string("targad-lint: allow(").size();
      const size_t end = raw.find(')', start);
      if (end == std::string::npos) continue;
      std::string list = raw.substr(start, end - start);
      std::istringstream in(list);
      std::string item;
      while (std::getline(in, item, ',')) {
        item.erase(std::remove(item.begin(), item.end(), ' '), item.end());
        if (item == rule || item == "*") return;
      }
    }
    findings_.push_back({rel, ln, rule, message});
  }

  fs::path root_;
  std::set<std::string> result_functions_;
  std::set<std::string> status_functions_;
  std::vector<Finding> findings_;
};

bool IsSourceFile(const fs::path& path) {
  return path.extension() == ".h" || path.extension() == ".cc";
}

std::vector<fs::path> GatherFiles(const std::vector<std::string>& paths) {
  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && IsSourceFile(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(p)) {
      files.push_back(p);
    } else {
      std::fprintf(stderr, "targad_lint: no such path: %s\n", p.c_str());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<Finding> RunLint(const fs::path& root,
                             const std::vector<std::string>& paths) {
  Linter linter(root);
  const std::vector<fs::path> files = GatherFiles(paths);
  std::vector<std::pair<fs::path, std::string>> cleaned;
  cleaned.reserve(files.size());
  for (const fs::path& f : files) {
    cleaned.emplace_back(f, StripCommentsAndStrings(ReadFile(f)));
  }
  for (const auto& [f, clean] : cleaned) linter.CollectResultFunctions(clean);
  for (const auto& [f, clean] : cleaned) {
    linter.CheckFile(f, ReadFile(f), clean);
  }
  return linter.findings();
}

// ---------------------------------------------------------------------------
// Self-test: seed one violation per rule in a temp tree, assert each fires,
// and assert the escape hatch and comment/string immunity hold.
// ---------------------------------------------------------------------------

struct SelfCase {
  std::string file;
  std::string contents;
  // Rules this file must trip, as (rule, line) pairs; empty = must be clean.
  std::vector<std::pair<std::string, int>> expect;
};

int RunSelfTest() {
  const fs::path dir =
      fs::temp_directory_path() /
      ("targad_lint_selftest_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir / "sub");
  fs::create_directories(dir / "nn" / "kernels");

  const std::vector<SelfCase> cases = {
      {"sub/bad_guard.h",
       "#ifndef WRONG_GUARD_H_\n#define WRONG_GUARD_H_\n#endif\n",
       {{"include-guard", 1}}},
      {"sub/no_define.h",
       "#ifndef TARGAD_SUB_NO_DEFINE_H_\n#define SOMETHING_ELSE\n#endif\n",
       {{"include-guard", 1}}},
      {"sub/using_ns.h",
       "#ifndef TARGAD_SUB_USING_NS_H_\n#define TARGAD_SUB_USING_NS_H_\n"
       "using namespace std;\n#endif\n",
       {{"using-namespace-header", 3}}},
      {"sub/banned.cc",
       "int f() {\n"
       "  int x = rand();\n"
       "  printf(\"%d\", x);\n"
       "  std::cout << x;\n"
       "  if (x < 0) throw 1;\n"
       "  return x;\n}\n",
       {{"banned-rand", 2},
        {"banned-io", 3},
        {"banned-io", 4},
        {"naked-throw", 5}}},
      {"sub/retnotok.cc",
       "Result<int> Load(int v);\n"
       "Status A(int v) {\n"
       "  TARGAD_RETURN_NOT_OK(Load(v));\n"
       "  return Status::OK();\n}\n"
       "Status B(Result<int> r) {\n"
       "  TARGAD_RETURN_NOT_OK(r.ValueOrDie());\n"
       "  return Status::OK();\n}\n",
       {{"return-not-ok-result", 3}, {"return-not-ok-result", 7}}},
      // The escape hatch silences the named rule(s) on that line (same line
      // or the line directly above)...
      {"sub/allowed.cc",
       "int g() {\n"
       "  return rand();  // targad-lint: allow(banned-rand)\n}\n"
       "int h() {\n"
       "  // targad-lint: allow(banned-io,banned-rand)\n"
       "  printf(\"%d\", rand());\n}\n",
       {}},
      // ...but only the named rule.
      {"sub/allow_wrong_rule.cc",
       "int g() {\n"
       "  return rand();  // targad-lint: allow(banned-io)\n}\n",
       {{"banned-rand", 2}}},
      // mutex-guarded-by: `depth_` sits below the mutex without an
      // annotation (line 8). Everything around it is exempt: fields above
      // the mutex, condition variables, annotated fields, statics,
      // atomics, and an allow()ed line. The `};` closes the scope, so the
      // trailing `after_` is clean.
      {"sub/guarded.h",
       "#ifndef TARGAD_SUB_GUARDED_H_\n"
       "#define TARGAD_SUB_GUARDED_H_\n"
       "class Pool {\n"
       " private:\n"
       "  const int capacity_ = 4;\n"
       "  mutable RankedMutex mu_{LockRank::kThreadPool};\n"
       "  std::condition_variable_any cv_;\n"
       "  int depth_ = 0;\n"
       "  int safe_ TARGAD_GUARDED_BY(mu_) = 0;\n"
       "  static int counter_;\n"
       "  std::atomic<int> hits_{0};\n"
       "  int waived_;  // targad-lint: allow(mutex-guarded-by)\n"
       "};\n"
       "int after_ = 0;\n"
       "#endif\n",
       {{"mutex-guarded-by", 8}}},
      // raw-mutex-lock: direct lock calls on mutex-named receivers (member
      // access or pointer) are flagged; the same calls on a MutexLock
      // guard named `lock` are the blessed manual-window form, and the
      // escape hatch still works.
      {"sub/rawlock.cc",
       "void f() {\n"
       "  mu_.lock();\n"
       "  mu_.unlock();\n"
       "  if (g_mutex->try_lock()) return;\n"
       "  lock.unlock();\n"
       "  swap_mu_.lock();  // targad-lint: allow(raw-mutex-lock)\n"
       "}\n",
       {{"raw-mutex-lock", 2},
        {"raw-mutex-lock", 3},
        {"raw-mutex-lock", 4}}},
      // lock-rank-table: kB reuses rank 10 (line 3), kA is declared twice
      // (line 4); kC is a fresh name with a fresh rank and stays clean.
      {"sub/ranks.cc",
       "#define TARGAD_LOCK_RANK_TABLE(X) \\\n"
       "  X(kA, 10)                       \\\n"
       "  X(kB, 10)                       \\\n"
       "  X(kA, 20)                       \\\n"
       "  X(kC, 30)\n",
       {{"lock-rank-table", 3}, {"lock-rank-table", 4}}},
      // raw-dense-loop: a hand-written triple-loop matmul fires (line 5, on
      // the accumulate line), as does a braceless nested accumulation over
      // At() (line 10); the escape hatch still works (line 13).
      {"sub/dense.cc",
       "void MatMul(double* c, const double* a, const double* b, int n) {\n"
       "  for (int i = 0; i < n; ++i) {\n"
       "    for (int j = 0; j < n; ++j) {\n"
       "      for (int k = 0; k < n; ++k) {\n"
       "        c[i * n + j] += a[i * n + k] * b[k * n + j];\n"
       "      }\n"
       "    }\n"
       "  }\n"
       "  for (int i = 0; i < n; ++i)\n"
       "    for (int j = 0; j < n; ++j) out.At(i, j) += x.At(i, j) * w[j];\n"
       "  for (int i = 0; i < n; ++i) {\n"
       "    for (int j = 0; j < n; ++j) {\n"
       "      c[i] += a[i * n + j] * b[j];  // targad-lint: allow(raw-dense-loop)\n"
       "    }\n"
       "  }\n"
       "}\n",
       {{"raw-dense-loop", 5}, {"raw-dense-loop", 10}}},
      // ...the kernel layer itself is exempt by path...
      {"nn/kernels/fast.cc",
       "void Gemm(double* c, const double* a, const double* b, int n) {\n"
       "  for (int i = 0; i < n; ++i) {\n"
       "    for (int j = 0; j < n; ++j) {\n"
       "      c[i * n + j] += a[i * n + j] * b[j * n + i];\n"
       "    }\n"
       "  }\n"
       "}\n",
       {}},
      // ...and legitimate shapes stay clean: a depth-1 dot product, a
      // nested sum without multiplication, and a single-subscript weighted
      // reduction over a hoisted scalar.
      {"sub/dense_ok.cc",
       "double f(const double* a, const double* b, double* s, int n) {\n"
       "  double dot = 0.0;\n"
       "  for (int i = 0; i < n; ++i) dot += a[i] * b[i];\n"
       "  for (int i = 0; i < n; ++i) {\n"
       "    for (int j = 0; j < n; ++j) s[j] += a[i * n + j];\n"
       "    const double r = b[i];\n"
       "    for (int j = 0; j < n; ++j) {\n"
       "      const double diff = a[i * n + j];\n"
       "      s[j] += r * diff * diff;\n"
       "    }\n"
       "  }\n"
       "  return dot;\n"
       "}\n",
       {}},
      // Comments and strings never trip rules; snprintf is not printf; a
      // legitimate TARGAD_RETURN_NOT_OK on a Status call is clean, as are
      // the `.status()` adapter and an ambiguous Status/Result overload set.
      {"sub/immune.cc",
       "// rand() and printf() and throw, discussed in prose.\n"
       "/* std::cout << rand(); */\n"
       "const char* s = \"printf(rand()) throw\";\n"
       "int n = snprintf(buf, 4, \"x\");\n"
       "Status DoIt();\n"
       "Status Fit(int x);\n"
       "Result<int> Fit(double x);\n"
       "Result<int> MakeIt();\n"
       "Status Run() {\n"
       "  TARGAD_RETURN_NOT_OK(DoIt());\n"
       "  TARGAD_RETURN_NOT_OK(Fit(1));\n"
       "  TARGAD_RETURN_NOT_OK(MakeIt().status());\n"
       "  return Status::OK();\n}\n",
       {}},
  };

  for (const SelfCase& c : cases) {
    std::ofstream out(dir / c.file, std::ios::binary);
    out << c.contents;
  }

  const std::vector<Finding> findings = RunLint(dir, {dir.string()});

  std::set<std::pair<std::string, std::string>> got;  // (file:line, rule)
  for (const Finding& f : findings) {
    got.insert({f.file + ":" + std::to_string(f.line), f.rule});
  }
  int failures = 0;
  std::set<std::pair<std::string, std::string>> expected;
  for (const SelfCase& c : cases) {
    for (const auto& [rule, line] : c.expect) {
      expected.insert({c.file + ":" + std::to_string(line), rule});
    }
  }
  for (const auto& e : expected) {
    if (got.count(e) == 0) {
      std::fprintf(stderr, "SELF-TEST FAIL: expected %s at %s, not reported\n",
                   e.second.c_str(), e.first.c_str());
      ++failures;
    }
  }
  for (const auto& g : got) {
    if (expected.count(g) == 0) {
      std::fprintf(stderr, "SELF-TEST FAIL: unexpected %s at %s\n",
                   g.second.c_str(), g.first.c_str());
      ++failures;
    }
  }
  fs::remove_all(dir);
  if (failures == 0) {
    std::fprintf(stderr,
                 "targad_lint self-test PASSED (%zu seeded findings, "
                 "suppression and immunity verified)\n",
                 expected.size());
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") return RunSelfTest();
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "targad_lint: --root needs a directory\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--help") {
      std::fprintf(stderr,
                   "usage: targad_lint --root <dir> [path...] | --self-test\n");
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (root.empty()) {
    std::fprintf(stderr, "targad_lint: --root <dir> is required\n");
    return 2;
  }
  if (paths.empty()) paths.push_back(root);

  const std::vector<Finding> findings = RunLint(root, paths);
  for (const Finding& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "targad_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
