#!/usr/bin/env python3
"""Render per-dtype serve-throughput deltas as a markdown table.

Reads the committed bench trajectory (BENCH_serve_throughput.json) and,
optionally, a fresh serve_throughput.json produced by bench_serve_throughput
on this checkout. For every dtype it reports the best rows/sec across the
worker x batch grid and the delta against the baseline (the last trajectory
entry when a fresh run is given, otherwise the previous entry).

When trajectory entries carry a "net" object (the bench_net_loadgen
record), or a fresh net_loadgen.json is passed via --run-net, a second
table diffs the TCP front-end's open-loop latency ladder (p50/p99/p999,
lower is better) the same way.

Likewise a "train" object (the bench_train_throughput record), or a fresh
train_throughput.json passed via --run-train, yields a training-throughput
table: rows/sec and epoch time per kernel thread count, plus the
cross-thread bit-exactness flag.

Only the standard library is used; CI pipes the output into a PR comment.

Usage:
  bench_delta.py --trajectory BENCH_serve_throughput.json \
      [--run serve_throughput.json] [--run-net net_loadgen.json] \
      [--run-train train_throughput.json] [--output bench_delta.md]
"""

import argparse
import json
import sys

COMMENT_MARKER = "<!-- targad-bench-deltas -->"


def best_by_dtype(results):
    best = {}
    for cell in results:
        dtype = cell["dtype"]
        best[dtype] = max(best.get(dtype, 0.0), float(cell["rows_per_sec"]))
    return best


def entry_label(entry):
    pr = entry.get("pr")
    return f"PR {pr}" if pr is not None else entry.get("date", "baseline")


def format_rows(rows_per_sec):
    return f"{rows_per_sec:,.1f}"


def format_delta(base, new):
    if base <= 0.0:
        return "n/a"
    pct = (new / base - 1.0) * 100.0
    return f"{pct:+.1f}%"


def format_latency_delta(base, new):
    """Latency delta where lower is better: negative percentages are wins."""
    if base <= 0.0:
        return "n/a"
    pct = (new / base - 1.0) * 100.0
    return f"{pct:+.1f}%"


def render_net(baseline, candidate, candidate_label, run_net):
    """Markdown lines for the TCP loadgen section, or [] when absent."""
    base_net = baseline.get("net")
    cand_net = run_net if run_net is not None else candidate.get("net")
    if cand_net is None:
        return []
    lines = [
        "### TCP front-end — open-loop loadgen latency",
        "",
    ]
    if base_net is None:
        base_label = "(no baseline)"
        base_net = {}
    else:
        base_label = f"{entry_label(baseline)} (baseline)"
    lines += [
        f"| metric | {base_label} | {candidate_label} | delta |",
        "|---|---:|---:|---:|",
    ]
    for key in ("p50_us", "p99_us", "p999_us"):
        base = float(base_net.get(key, 0.0))
        cand = float(cand_net.get(key, 0.0))
        base_text = f"{base:,.0f} us" if base > 0.0 else "n/a"
        lines.append(
            f"| {key} | {base_text} | {cand:,.0f} us "
            f"| {format_latency_delta(base, cand)} |"
        )
    base_rps = float(base_net.get("rows_per_sec", 0.0))
    cand_rps = float(cand_net.get("rows_per_sec", 0.0))
    base_text = format_rows(base_rps) if base_rps > 0.0 else "n/a"
    lines.append(
        f"| rows/sec | {base_text} | {format_rows(cand_rps)} "
        f"| {format_delta(base_rps, cand_rps)} |"
    )
    lines += [
        "",
        f"_Open-loop {cand_net.get('dist', '?')} replay at "
        f"{cand_net.get('rate_target', '?')} req/s over "
        f"{cand_net.get('connections', '?')} connections; "
        f"sent={cand_net.get('sent', '?')} shed={cand_net.get('shed', '?')} "
        f"errors={cand_net.get('errors', '?')}. Latency deltas: lower is "
        "better._",
        "",
    ]
    return lines


def render_cold_start(baseline, candidate, candidate_label):
    """Markdown lines for the cold-start section, or [] when absent.

    The record rides inside serve_throughput.json (and the trajectory
    entries), so no separate --run flag is needed; entries from before the
    flat-artifact format simply skip the section.
    """
    cand_cold = candidate.get("cold_start")
    if cand_cold is None:
        return []
    base_cold = baseline.get("cold_start")
    base_label = (
        f"{entry_label(baseline)} (baseline)"
        if base_cold is not None
        else "(no baseline)"
    )
    if base_cold is None:
        base_cold = {}
    lines = [
        "### Cold start — disk to servable scorer (float32)",
        "",
        f"| metric | {base_label} | {candidate_label} | delta |",
        "|---|---:|---:|---:|",
    ]
    for key in ("text_load_us", "artifact_load_us"):
        base = float(base_cold.get(key, 0.0))
        cand = float(cand_cold.get(key, 0.0))
        base_text = f"{base:,.0f} us" if base > 0.0 else "n/a"
        lines.append(
            f"| {key} | {base_text} | {cand:,.0f} us "
            f"| {format_latency_delta(base, cand)} |"
        )
    lines += [
        "",
        f"_Median of 30 page-cache-warm loads; text = parse + freeze, "
        f"artifact = mmap + pointer fixup over a "
        f"{int(cand_cold.get('artifact_bytes', 0)):,}-byte `.tgz1`. "
        f"Artifact load is {float(cand_cold.get('speedup', 0.0)):.1f}x "
        "faster — the registry's cold-to-warm promotion cost. Latency "
        "deltas: lower is better._",
        "",
    ]
    return lines


def render_train(baseline, candidate, candidate_label, run_train):
    """Markdown lines for the training-throughput section, or [] if absent."""
    base_train = baseline.get("train")
    cand_train = run_train if run_train is not None else candidate.get("train")
    if cand_train is None:
        return []

    def by_threads(record):
        rows = record.get("results", [])
        return {int(r["threads"]): r for r in rows if "threads" in r}

    base_rows = by_threads(base_train) if base_train is not None else {}
    cand_rows = by_threads(cand_train)
    base_label = (
        f"{entry_label(baseline)} (baseline)"
        if base_train is not None
        else "(no baseline)"
    )
    lines = [
        "### Training throughput — minibatch autoencoder epochs",
        "",
        f"| threads | {base_label} rows/sec | {candidate_label} rows/sec "
        "| delta | epoch_ms | speedup |",
        "|---:|---:|---:|---:|---:|---:|",
    ]
    for threads in sorted(cand_rows):
        cand = cand_rows[threads]
        base_rps = float(base_rows.get(threads, {}).get("rows_per_sec", 0.0))
        cand_rps = float(cand.get("rows_per_sec", 0.0))
        base_text = format_rows(base_rps) if base_rps > 0.0 else "n/a"
        lines.append(
            f"| {threads} | {base_text} | {format_rows(cand_rps)} "
            f"| {format_delta(base_rps, cand_rps)} "
            f"| {float(cand.get('epoch_ms', 0.0)):,.1f} "
            f"| {float(cand.get('speedup', 1.0)):.2f}x |"
        )
    bitexact = cand_train.get("bitexact_across_threads")
    lines += [
        "",
        f"_Arch {cand_train.get('arch', '?')}, batch "
        f"{cand_train.get('batch_size', '?')}, "
        f"{cand_train.get('rows', '?')} rows x "
        f"{cand_train.get('epochs', '?')} epochs; final parameters "
        + (
            "bit-identical across all thread counts._"
            if bitexact
            else "**DRIFTED** across thread counts._"
        ),
        "",
    ]
    return lines


def render(trajectory, run, run_net=None, run_train=None):
    entries = trajectory["trajectory"]
    if run is not None:
        baseline, candidate = entries[-1], run
        candidate_label = "this run"
    elif len(entries) >= 2:
        baseline, candidate = entries[-2], entries[-1]
        candidate_label = entry_label(candidate)
    else:
        return f"{COMMENT_MARKER}\nNot enough bench entries to diff.\n"
    base_label = f"{entry_label(baseline)} (baseline)"

    lines = [COMMENT_MARKER]
    # An entry may carry only a net or train record (a PR that benched just
    # one subsystem); skip the serve-throughput table rather than die, so the
    # sections that do have data still render.
    base_results = baseline.get("results")
    cand_results = candidate.get("results")
    if base_results is None or cand_results is None:
        missing = entry_label(candidate if cand_results is None else baseline)
        lines += [
            f"_Serve-throughput table skipped: {missing} has no serve "
            "grid (`results`)._",
            "",
        ]
    else:
        base_best = best_by_dtype(base_results)
        cand_best = best_by_dtype(cand_results)
        lines += [
            "### Serve throughput — best rows/sec by dtype",
            "",
            f"| dtype | {base_label} | {candidate_label} | delta |",
            "|---|---:|---:|---:|",
        ]
        for dtype in sorted(set(base_best) | set(cand_best)):
            base = base_best.get(dtype, 0.0)
            cand = cand_best.get(dtype, 0.0)
            lines.append(
                f"| {dtype} | {format_rows(base)} | {format_rows(cand)} "
                f"| {format_delta(base, cand)} |"
            )
        lines.append("")

    backend = candidate.get("kernel_backend")
    tiling = candidate.get("kernel_tiling")
    if backend is not None:
        detail = f"kernel backend: `{backend}`"
        if tiling is not None:
            detail += (
                f" · tiling: threads={tiling.get('threads', '?')},"
                f" min_flops={tiling.get('min_flops', '?')},"
                f" min_rows_per_tile={tiling.get('min_rows_per_tile', '?')}"
            )
        lines.append(detail)
        lines.append("")
    lines.extend(render_cold_start(baseline, candidate, candidate_label))
    lines.extend(render_net(baseline, candidate, candidate_label, run_net))
    lines.extend(render_train(baseline, candidate, candidate_label, run_train))
    lines.append(
        f"_Grid: {candidate.get('rows_per_cell', '?')} rows/cell at "
        f"scale {candidate.get('scale', '?')}; numbers are the best cell "
        "across workers × max_batch._"
    )
    return "\n".join(lines) + "\n"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trajectory", required=True,
                        help="committed BENCH_serve_throughput.json")
    parser.add_argument("--run", default=None,
                        help="fresh serve_throughput.json from this checkout")
    parser.add_argument("--run-net", default=None,
                        help="fresh net_loadgen.json from this checkout")
    parser.add_argument("--run-train", default=None,
                        help="fresh train_throughput.json from this checkout")
    parser.add_argument("--output", default=None,
                        help="write markdown here as well as stdout")
    args = parser.parse_args()

    with open(args.trajectory) as f:
        trajectory = json.load(f)
    run = None
    if args.run is not None:
        with open(args.run) as f:
            run = json.load(f)
    run_net = None
    if args.run_net is not None:
        with open(args.run_net) as f:
            run_net = json.load(f)
    run_train = None
    if args.run_train is not None:
        with open(args.run_train) as f:
            run_train = json.load(f)

    markdown = render(trajectory, run, run_net, run_train)
    sys.stdout.write(markdown)
    if args.output is not None:
        with open(args.output, "w") as f:
            f.write(markdown)
    return 0


if __name__ == "__main__":
    sys.exit(main())
