// Lexer edge-case pins. Each case here is a construct the v4 lexer
// mis-tokenized (or could regress on): digit separators, hex floats,
// user-defined-literal suffixes, and — the important one — backslash-newline
// line splicing OUTSIDE preprocessor directives. C++ splices physical lines
// before tokenization (translation phase 2), so `MY_\<newline>DCHECK(v)` is
// ONE identifier; v4 only spliced inside directives, which split the token
// and broke IWYU-lite's macro-use tracking.

#include <cstdio>
#include <string>
#include <vector>

#include "tools/lint/lexer.h"
#include "tools/lint/selftest.h"

namespace targad {
namespace lint {
namespace {

const char* KindName(Tok k) {
  switch (k) {
    case Tok::kIdent: return "ident";
    case Tok::kNumber: return "number";
    case Tok::kString: return "string";
    case Tok::kCharLit: return "charlit";
    case Tok::kHeaderName: return "header";
    case Tok::kPunct: return "punct";
    case Tok::kComment: return "comment";
  }
  return "?";
}

struct Checker {
  int failures = 0;

  // Asserts token `index` of `src` lexes to (kind, text) and, when `line`
  // is >= 0, sits on that physical line.
  void Expect(const std::string& label, const std::string& src, size_t index,
              Tok kind, const std::string& text, int line = -1) {
    const std::vector<Token> toks = Lex(src);
    if (index >= toks.size()) {
      std::fprintf(stderr,
                   "LEXER-TEST FAIL [%s]: wanted token %zu, got only %zu\n",
                   label.c_str(), index, toks.size());
      ++failures;
      return;
    }
    const Token& t = toks[index];
    if (t.kind != kind || t.text != text || (line >= 0 && t.line != line)) {
      std::fprintf(stderr,
                   "LEXER-TEST FAIL [%s]: token %zu = %s \"%s\" line %d, "
                   "wanted %s \"%s\" line %d\n",
                   label.c_str(), index, KindName(t.kind), t.text.c_str(),
                   t.line, KindName(kind), text.c_str(), line);
      ++failures;
    }
  }

  void ExpectCount(const std::string& label, const std::string& src,
                   size_t count) {
    const std::vector<Token> toks = Lex(src);
    if (toks.size() != count) {
      std::fprintf(stderr,
                   "LEXER-TEST FAIL [%s]: %zu tokens, wanted %zu\n",
                   label.c_str(), toks.size(), count);
      ++failures;
    }
  }
};

}  // namespace

int RunLexerSelfTest() {
  Checker c;

  // Digit separators fold into one number token.
  c.Expect("digit-separator", "int x = 1'000'000;", 3, Tok::kNumber,
           "1'000'000");
  // A separator only continues on a following alnum: the char literal after
  // the comma stays a char literal.
  c.Expect("separator-vs-charlit", "f(1, 'a');", 2, Tok::kNumber, "1");
  c.Expect("separator-vs-charlit", "f(1, 'a');", 4, Tok::kCharLit, "a");
  // Hex floats, including a signed binary exponent.
  c.Expect("hex-float", "double d = 0x1.8p-3;", 3, Tok::kNumber, "0x1.8p-3");
  c.Expect("hex-float-upper", "x = 0X1P3;", 2, Tok::kNumber, "0X1P3");
  // User-defined-literal suffixes are part of the pp-number.
  c.Expect("udl-suffix", "auto s = 10_kb;", 3, Tok::kNumber, "10_kb");
  c.Expect("float-suffix", "auto f = 1.5e-3f;", 3, Tok::kNumber, "1.5e-3f");

  // Line splicing outside preprocessor directives: a spliced identifier is
  // ONE token, carrying the line of its first character.
  c.Expect("spliced-ident", "MY_\\\nDCHECK(v);", 0, Tok::kIdent, "MY_DCHECK",
           1);
  c.Expect("spliced-ident-follow", "MY_\\\nDCHECK(v);", 2, Tok::kIdent, "v",
           2);
  // A splice BETWEEN tokens is simply deleted.
  c.Expect("spliced-gap", "int \\\n y;", 1, Tok::kIdent, "y", 2);
  // A spliced number is one token.
  c.Expect("spliced-number", "x = 1'0\\\n00;", 2, Tok::kNumber, "1'000", 1);
  // Inside a directive, a splice in the middle of the macro NAME still
  // yields one identifier and the directive stays alive.
  c.Expect("spliced-define-name", "#define FO\\\nO 1\nint y;", 2, Tok::kIdent,
           "FOO", 1);
  c.Expect("spliced-define-alive", "#define A \\\n B(1)\nint y;", 3,
           Tok::kIdent, "B", 2);
  {
    // ...and that continuation token is still flagged pp.
    const std::vector<Token> toks = Lex("#define A \\\n B(1)\nint y;");
    if (toks.size() < 4 || !toks[3].pp) {
      std::fprintf(stderr,
                   "LEXER-TEST FAIL [spliced-define-pp]: continuation token "
                   "lost its pp flag\n");
      ++c.failures;
    }
  }
  // A spliced line comment is one comment token covering both lines (the
  // allow() hatch reads comments by line span).
  {
    const std::vector<Token> toks = Lex("// first \\\nsecond\nint y;");
    if (toks.empty() || toks[0].kind != Tok::kComment ||
        toks[0].text.find("second") == std::string::npos) {
      std::fprintf(stderr,
                   "LEXER-TEST FAIL [spliced-comment]: comment did not "
                   "continue past the splice\n");
      ++c.failures;
    }
  }
  // Splices inside string literals do not terminate the literal.
  c.Expect("spliced-string", "const char* s = \"ab\\\ncd\";", 5, Tok::kString,
           "ab\\\ncd");
  // Raw strings keep a literal backslash-newline verbatim (no splicing in
  // raw literals) and the token count stays stable.
  c.ExpectCount("raw-string-count", "auto r = R\"(a\\\nb)\";\n", 5);

  if (c.failures == 0) {
    std::fprintf(stderr, "targad_lint lexer self-test PASSED\n");
    return 0;
  }
  return 1;
}

}  // namespace lint
}  // namespace targad
