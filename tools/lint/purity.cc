#include "tools/lint/purity.h"

#include <set>

namespace targad {
namespace lint {

void ScanHotPathBans(const std::string& rel, const std::vector<Token>& code,
                     size_t body_begin, size_t body_end,
                     const std::string& suffix, std::vector<Finding>* out) {
  auto report = [&](int line, const char* rule, const std::string& what) {
    out->push_back({rel, line, rule, what + suffix});
  };
  auto next_code = [&](size_t i) -> size_t {
    size_t j = i + 1;
    while (j < body_end && code[j].pp) ++j;
    return j;
  };
  auto followed_by_call = [&](size_t i) {
    const size_t j = next_code(i);
    return j < body_end && (IsPunct(code[j], "(") || IsPunct(code[j], "<"));
  };

  static const std::set<std::string> kAllocCalls = {
      "make_unique", "make_shared", "malloc", "calloc", "realloc", "strdup",
  };
  static const std::set<std::string> kGrowthCalls = {
      "push_back", "emplace_back", "resize", "reserve",
  };
  static const std::set<std::string> kLockTypes = {
      "MutexLock", "lock_guard", "unique_lock", "scoped_lock",
  };
  static const std::set<std::string> kBlockingCalls = {
      "sleep_for", "sleep_until", "usleep",  "nanosleep",
      "poll",      "select",      "epoll_wait", "accept",
      "connect",   "getline",     "fread",   "fgets",
  };

  for (size_t i = body_begin; i < body_end; ++i) {
    const Token& t = code[i];
    if (t.pp || t.kind != Tok::kIdent) continue;
    const std::string& s = t.text;
    if (s == "new") {
      report(t.line, "hot-path-alloc", "`new` allocates");
      continue;
    }
    if (kAllocCalls.count(s) > 0 && followed_by_call(i)) {
      report(t.line, "hot-path-alloc", s + "() allocates");
      continue;
    }
    if (kGrowthCalls.count(s) > 0 && followed_by_call(i)) {
      report(t.line, "hot-path-alloc",
             "." + s + "() can grow the heap; size buffers up front");
      continue;
    }
    if (s == "std") {
      const size_t j = next_code(i);
      if (j < body_end && IsPunct(code[j], "::")) {
        const size_t k = next_code(j);
        if (k < body_end && IsIdent(code[k], "string")) {
          // `std::string::npos` is a scope access and `std::string&` /
          // `std::string*` name the type without constructing one; only a
          // use that can materialize a string is a violation.
          const size_t m = next_code(k);
          const bool type_only =
              m < body_end &&
              (IsPunct(code[m], "::") || IsPunct(code[m], "&") ||
               IsPunct(code[m], "*"));
          if (!type_only) {
            report(t.line, "hot-path-string",
                   "std::string construction allocates");
          }
          i = k;
          continue;
        }
      }
    }
    if (s == "to_string" && followed_by_call(i)) {
      report(t.line, "hot-path-string", "to_string() builds a string");
      continue;
    }
    if (s == "ostringstream" || s == "stringstream") {
      report(t.line, "hot-path-string", s + " builds strings");
      continue;
    }
    if (kLockTypes.count(s) > 0) {
      report(t.line, "hot-path-lock", s + " acquires a mutex");
      continue;
    }
    if (s.rfind("TARGAD_LOG", 0) == 0) {
      report(t.line, "hot-path-log", s + " performs I/O");
      continue;
    }
    if (kBlockingCalls.count(s) > 0 && followed_by_call(i)) {
      report(t.line, "hot-path-block", s + "() can block");
      continue;
    }
  }
}

}  // namespace lint
}  // namespace targad
