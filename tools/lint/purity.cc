#include "tools/lint/purity.h"

#include <map>
#include <set>

namespace targad {
namespace lint {
namespace {

bool IsControlKeyword(const std::string& s) {
  static const std::set<std::string> kControl = {
      "if",     "for",   "while", "switch", "do",
      "else",   "try",   "catch", "return", "co_return",
  };
  return kControl.count(s) > 0;
}

bool IsTypeKeyword(const std::string& s) {
  return s == "class" || s == "struct" || s == "union" || s == "enum";
}

bool IsCallLikeKeyword(const std::string& s) {
  static const std::set<std::string> kNotCalls = {
      "if",         "for",
      "while",      "switch",
      "return",     "sizeof",
      "alignof",    "catch",
      "new",        "delete",
      "static_cast", "reinterpret_cast",
      "const_cast", "dynamic_cast",
      "decltype",   "noexcept",
      "assert",     "defined",
  };
  return kNotCalls.count(s) > 0;
}

// A statement classified at the moment its body '{' arrives.
enum class ScopeKind { kNamespace, kType, kFunction, kOther };

struct Scope {
  ScopeKind kind;
  size_t fn_index;  // Valid when kind == kFunction.
};

}  // namespace

std::vector<FnDef> FindFunctionDefs(const std::vector<Token>& code) {
  // Work on the non-preprocessor view; remember each token's index in the
  // original stream so body spans can be scanned there later.
  std::vector<size_t> orig;
  orig.reserve(code.size());
  for (size_t i = 0; i < code.size(); ++i) {
    if (!code[i].pp) orig.push_back(i);
  }

  std::vector<FnDef> defs;
  std::vector<Scope> stack;
  std::vector<size_t> stmt;  // Indices into `orig` since the last boundary.
  int paren = 0;

  auto classify = [&](const std::vector<size_t>& s) -> ScopeKind {
    if (!stack.empty() && (stack.back().kind == ScopeKind::kFunction ||
                           stack.back().kind == ScopeKind::kOther)) {
      return ScopeKind::kOther;  // Blocks inside bodies are never defs.
    }
    if (s.empty()) return ScopeKind::kOther;
    const Token& first = code[orig[s[0]]];
    if (IsIdent(first, "namespace")) return ScopeKind::kNamespace;
    // class/struct/enum/union before any '(' is a type body; a '(' first
    // means the keyword is inside a signature (e.g. an elaborated return
    // type), which stays eligible as a function.
    for (size_t k : s) {
      const Token& t = code[orig[k]];
      if (IsPunct(t, "(")) break;
      if (t.kind == Tok::kIdent && IsTypeKeyword(t.text)) {
        return ScopeKind::kType;
      }
    }
    if (first.kind == Tok::kIdent && IsControlKeyword(first.text)) {
      return ScopeKind::kOther;
    }
    // Function shape: some identifier immediately followed by '(', and no
    // '=' at statement-top-level before the body (that is an initializer —
    // a lambda, an aggregate, a default member).
    int depth = 0;
    bool has_call_shape = false;
    for (size_t j = 0; j < s.size(); ++j) {
      const Token& t = code[orig[s[j]]];
      if (IsPunct(t, "(")) {
        ++depth;
        if (!has_call_shape && j > 0 &&
            code[orig[s[j - 1]]].kind == Tok::kIdent) {
          has_call_shape = true;
        }
        continue;
      }
      if (IsPunct(t, ")")) {
        --depth;
        continue;
      }
      if (depth == 0 && IsPunct(t, "=")) return ScopeKind::kOther;
    }
    return has_call_shape ? ScopeKind::kFunction : ScopeKind::kOther;
  };

  for (size_t i = 0; i < orig.size(); ++i) {
    const Token& t = code[orig[i]];
    if (IsPunct(t, "(")) {
      ++paren;
      stmt.push_back(i);
      continue;
    }
    if (IsPunct(t, ")")) {
      --paren;
      stmt.push_back(i);
      continue;
    }
    if (paren > 0) {
      stmt.push_back(i);
      continue;
    }
    if (IsPunct(t, ";")) {
      stmt.clear();
      continue;
    }
    if (IsPunct(t, "{")) {
      const ScopeKind kind = classify(stmt);
      Scope scope{kind, 0};
      if (kind == ScopeKind::kFunction) {
        FnDef def;
        def.line = code[orig[stmt[0]]].line;
        def.body_begin = orig[i];
        def.body_end = code.size();  // Patched when the scope pops.
        for (size_t j = 0; j < stmt.size(); ++j) {
          const Token& st = code[orig[stmt[j]]];
          if (IsIdent(st, "TARGAD_HOT_PATH")) def.hot = true;
          if (def.name.empty() && IsPunct(st, "(") && j > 0 &&
              code[orig[stmt[j - 1]]].kind == Tok::kIdent) {
            def.name = code[orig[stmt[j - 1]]].text;
          }
        }
        scope.fn_index = defs.size();
        defs.push_back(std::move(def));
      }
      stack.push_back(scope);
      stmt.clear();
      continue;
    }
    if (IsPunct(t, "}")) {
      if (!stack.empty()) {
        if (stack.back().kind == ScopeKind::kFunction) {
          defs[stack.back().fn_index].body_end = orig[i] + 1;
        }
        stack.pop_back();
      }
      stmt.clear();
      continue;
    }
    stmt.push_back(i);
  }

  // Collect called names per body (identifier immediately followed by '(',
  // minus keywords), for the one-level propagation step.
  for (FnDef& def : defs) {
    std::set<std::string> seen;
    for (size_t i = def.body_begin; i + 1 < def.body_end; ++i) {
      if (code[i].pp || code[i].kind != Tok::kIdent) continue;
      size_t j = i + 1;
      while (j < def.body_end && code[j].pp) ++j;
      if (j >= def.body_end || !IsPunct(code[j], "(")) continue;
      if (IsCallLikeKeyword(code[i].text)) continue;
      if (seen.insert(code[i].text).second) def.calls.push_back(code[i].text);
    }
  }
  return defs;
}

namespace {

// Scans one function body for ban violations. `via` names the hot caller
// when `def` is a propagated helper (empty for the hot function itself).
void ScanBody(const std::string& rel, const std::vector<Token>& code,
              const FnDef& def, const std::string& via,
              std::vector<Finding>* out) {
  const std::string suffix =
      via.empty()
          ? " in TARGAD_HOT_PATH function " + def.name + "()"
          : " in " + def.name + "(), called from TARGAD_HOT_PATH " + via +
                "()";
  auto report = [&](int line, const char* rule, const std::string& what) {
    out->push_back({rel, line, rule, what + suffix});
  };
  auto next_code = [&](size_t i) -> size_t {
    size_t j = i + 1;
    while (j < def.body_end && code[j].pp) ++j;
    return j;
  };
  auto followed_by_call = [&](size_t i) {
    const size_t j = next_code(i);
    return j < def.body_end && (IsPunct(code[j], "(") || IsPunct(code[j], "<"));
  };

  static const std::set<std::string> kAllocCalls = {
      "make_unique", "make_shared", "malloc", "calloc", "realloc", "strdup",
  };
  static const std::set<std::string> kGrowthCalls = {
      "push_back", "emplace_back", "resize", "reserve",
  };
  static const std::set<std::string> kLockTypes = {
      "MutexLock", "lock_guard", "unique_lock", "scoped_lock",
  };
  static const std::set<std::string> kBlockingCalls = {
      "sleep_for", "sleep_until", "usleep",  "nanosleep",
      "poll",      "select",      "epoll_wait", "accept",
      "connect",   "getline",     "fread",   "fgets",
  };

  for (size_t i = def.body_begin; i < def.body_end; ++i) {
    const Token& t = code[i];
    if (t.pp || t.kind != Tok::kIdent) continue;
    const std::string& s = t.text;
    if (s == "new") {
      report(t.line, "hot-path-alloc", "`new` allocates");
      continue;
    }
    if (kAllocCalls.count(s) > 0 && followed_by_call(i)) {
      report(t.line, "hot-path-alloc", s + "() allocates");
      continue;
    }
    if (kGrowthCalls.count(s) > 0 && followed_by_call(i)) {
      report(t.line, "hot-path-alloc",
             "." + s + "() can grow the heap; size buffers up front");
      continue;
    }
    if (s == "std") {
      const size_t j = next_code(i);
      if (j < def.body_end && IsPunct(code[j], "::")) {
        const size_t k = next_code(j);
        if (k < def.body_end && IsIdent(code[k], "string")) {
          // `std::string::npos` is a scope access and `std::string&` /
          // `std::string*` name the type without constructing one; only a
          // use that can materialize a string is a violation.
          const size_t m = next_code(k);
          const bool type_only =
              m < def.body_end &&
              (IsPunct(code[m], "::") || IsPunct(code[m], "&") ||
               IsPunct(code[m], "*"));
          if (!type_only) {
            report(t.line, "hot-path-string",
                   "std::string construction allocates");
          }
          i = k;
          continue;
        }
      }
    }
    if (s == "to_string" && followed_by_call(i)) {
      report(t.line, "hot-path-string", "to_string() builds a string");
      continue;
    }
    if (s == "ostringstream" || s == "stringstream") {
      report(t.line, "hot-path-string", s + " builds strings");
      continue;
    }
    if (kLockTypes.count(s) > 0) {
      report(t.line, "hot-path-lock", s + " acquires a mutex");
      continue;
    }
    if (s.rfind("TARGAD_LOG", 0) == 0) {
      report(t.line, "hot-path-log", s + " performs I/O");
      continue;
    }
    if (kBlockingCalls.count(s) > 0 && followed_by_call(i)) {
      report(t.line, "hot-path-block", s + "() can block");
      continue;
    }
  }
}

}  // namespace

std::vector<Finding> CheckHotPathPurity(const std::string& rel,
                                        const std::vector<Token>& code) {
  std::vector<Finding> findings;
  std::vector<FnDef> defs = FindFunctionDefs(code);
  std::map<std::string, std::vector<const FnDef*>> by_name;
  for (const FnDef& d : defs) by_name[d.name].push_back(&d);

  std::set<const FnDef*> scanned_helpers;
  for (const FnDef& d : defs) {
    if (!d.hot) continue;
    ScanBody(rel, code, d, "", &findings);
    for (const std::string& callee : d.calls) {
      auto it = by_name.find(callee);
      if (it == by_name.end()) continue;
      for (const FnDef* helper : it->second) {
        if (helper == &d || helper->hot) continue;
        if (!scanned_helpers.insert(helper).second) continue;
        ScanBody(rel, code, *helper, d.name, &findings);
      }
    }
  }
  return findings;
}

}  // namespace lint
}  // namespace targad
