#include "tools/lint/graph.h"

#include <climits>
#include <deque>
#include <set>

#include "tools/lint/layering.h"
#include "tools/lint/purity.h"

namespace targad {
namespace lint {
namespace {

std::string QualName(const FnSym& fn) {
  return fn.cls.empty() ? fn.name + "()" : fn.cls + "::" + fn.name + "()";
}

// Resolves a mutex name in the context of `cls`: a member of that class
// first, then a file-scope/global mutex. Returns the rank-table entry name,
// or "" when unknown.
std::string MutexRankName(const ProgramModel& pm, const std::string& cls,
                          const std::string& mutex) {
  auto it = pm.mutex_ranks.find({cls, mutex});
  if (it == pm.mutex_ranks.end()) it = pm.mutex_ranks.find({"", mutex});
  return it == pm.mutex_ranks.end() ? "" : it->second;
}

int RankValue(const ProgramModel& pm, const std::string& rank_name) {
  auto it = pm.rank_table.find(rank_name);
  return it == pm.rank_table.end() ? -1 : it->second;
}

// Ranks held on entry to `fi` per its TARGAD_REQUIRES annotations (merged
// declaration + definition sites). Unresolvable mutexes are skipped.
std::vector<std::pair<std::string, int>> EntryHeld(const ProgramModel& pm,
                                                   size_t fi) {
  std::vector<std::pair<std::string, int>> held;
  const FnSym& fn = pm.fn(fi);
  for (const std::string& m : fn.requires_mutexes) {
    const std::string name = MutexRankName(pm, fn.cls, m);
    const int rank = RankValue(pm, name);
    if (rank >= 0) held.push_back({name, rank});
  }
  return held;
}

// Resolves one call site to callee indices. The chain is deliberately
// conservative: no unique target, no edge.
std::vector<size_t> ResolveCall(const ProgramModel& pm, size_t fi,
                                const CallSite& cs) {
  const FnSym& fn = pm.fn(fi);
  auto methods = [&pm](const std::string& cls,
                       const std::string& name) -> std::vector<size_t> {
    auto it = pm.by_cls_name.find({cls, name});
    return it == pm.by_cls_name.end() ? std::vector<size_t>{} : it->second;
  };

  if (cs.via_member) {
    std::string cls;
    if (cs.receiver == "this") {
      cls = fn.cls;
    } else if (!cs.receiver.empty()) {
      auto lt = fn.local_types.find(cs.receiver);
      if (lt != fn.local_types.end()) {
        cls = lt->second;
      } else {
        auto mt = pm.member_types.find({fn.cls, cs.receiver});
        if (mt != pm.member_types.end()) cls = mt->second;
      }
    }
    if (cls.empty()) return {};
    return methods(cls, cs.name);
  }

  if (cs.via_scope && !cs.receiver.empty()) {
    if (cs.receiver == "std") return {};
    std::vector<size_t> m = methods(cs.receiver, cs.name);
    if (!m.empty()) return m;
    // Namespace-qualified free call: fall through to free resolution.
  }

  if (!cs.via_member) {
    if (!fn.cls.empty()) {
      std::vector<size_t> m = methods(fn.cls, cs.name);
      if (!m.empty()) return m;
    }
    // Same-file free function beats a global search.
    const FileSymbols& fs = pm.files[pm.fns[fi].file];
    std::vector<size_t> same_file;
    for (size_t t = 0; t < pm.fns.size(); ++t) {
      if (pm.fns[t].file != pm.fns[fi].file) continue;
      const FnSym& cand = pm.fn(t);
      if (cand.cls.empty() && cand.name == cs.name && t != fi) {
        same_file.push_back(t);
      }
    }
    (void)fs;
    if (!same_file.empty()) return same_file;
    // Globally unique free function; ambiguous names get no edge.
    std::vector<size_t> frees = methods("", cs.name);
    std::vector<size_t> others;
    for (size_t t : frees) {
      if (t != fi) others.push_back(t);
    }
    if (others.size() == 1) return others;
  }
  return {};
}

// Breadth-first reachability from `root` over the call graph, recording the
// parent of each first visit. Returns visit order (root first).
std::vector<size_t> Reach(const ProgramModel& pm, size_t root,
                          std::map<size_t, size_t>* parent,
                          const std::set<size_t>* stop) {
  std::vector<size_t> order;
  std::set<size_t> seen{root};
  std::deque<size_t> queue{root};
  while (!queue.empty()) {
    const size_t fi = queue.front();
    queue.pop_front();
    order.push_back(fi);
    if (stop != nullptr && stop->count(fi) > 0) continue;
    for (const std::vector<size_t>& targets : pm.edges[fi]) {
      for (size_t t : targets) {
        if (seen.insert(t).second) {
          (*parent)[t] = fi;
          queue.push_back(t);
        }
      }
    }
  }
  return order;
}

}  // namespace

ProgramModel BuildProgramModel(std::vector<FileSymbols> files) {
  ProgramModel pm;
  pm.files = std::move(files);

  for (size_t f = 0; f < pm.files.size(); ++f) {
    const FileSymbols& fs = pm.files[f];
    for (const auto& [name, value] : fs.rank_table) {
      pm.rank_table.emplace(name, value);
    }
    for (const auto& kv : fs.mutex_ranks) pm.mutex_ranks.insert(kv);
    for (const auto& kv : fs.member_types) pm.member_types.insert(kv);
    for (const auto& kv : fs.decl_requires) pm.decl_requires.insert(kv);
    for (const auto& kv : fs.decl_acquires) pm.decl_acquires.insert(kv);
    for (size_t i = 0; i < fs.fns.size(); ++i) {
      pm.by_cls_name[{fs.fns[i].cls, fs.fns[i].name}].push_back(
          pm.fns.size());
      pm.fns.push_back(FnRef{f, i});
    }
  }

  // Fold declaration-site REQUIRES into definitions (the header declares,
  // the .cc defines), and resolve every acquisition to its table rank.
  for (const FnRef& ref : pm.fns) {
    FnSym& fn = pm.files[ref.file].fns[ref.fn];
    auto dr = pm.decl_requires.find({fn.cls, fn.name});
    if (dr != pm.decl_requires.end()) {
      for (const std::string& m : dr->second) {
        bool have = false;
        for (const std::string& own : fn.requires_mutexes) {
          if (own == m) have = true;
        }
        if (!have) fn.requires_mutexes.push_back(m);
      }
    }
    for (LockAcquire& acq : fn.acquires) {
      acq.rank_name = MutexRankName(pm, fn.cls, acq.mutex);
      acq.rank = RankValue(pm, acq.rank_name);
    }
  }

  pm.edges.resize(pm.fns.size());
  for (size_t fi = 0; fi < pm.fns.size(); ++fi) {
    const FnSym& fn = pm.fn(fi);
    pm.edges[fi].reserve(fn.calls.size());
    for (const CallSite& cs : fn.calls) {
      pm.edges[fi].push_back(ResolveCall(pm, fi, cs));
    }
  }
  return pm;
}

std::vector<Finding> CheckLockOrder(const ProgramModel& pm) {
  std::vector<Finding> out;

  // Minimum rank each function can acquire, directly or transitively, with
  // a witness for the message. TARGAD_ACQUIRE-annotated methods count as
  // acquiring their declared mutexes.
  struct MinAcq {
    int rank = INT_MAX;
    std::string desc;  // "kX (rank N; file:line)" of the witness acquire.
    std::string via;   // First callee on the path, "" when direct.
  };
  std::vector<MinAcq> min_acq(pm.fns.size());
  for (size_t fi = 0; fi < pm.fns.size(); ++fi) {
    const FnSym& fn = pm.fn(fi);
    const FileSymbols& fs = pm.file_of(fi);
    for (const LockAcquire& acq : fn.acquires) {
      if (acq.rank >= 0 && acq.rank < min_acq[fi].rank) {
        min_acq[fi] = {acq.rank,
                       acq.rank_name + " (rank " + std::to_string(acq.rank) +
                           "; " + fs.rel + ":" + std::to_string(acq.line) +
                           ")",
                       ""};
      }
    }
    auto da = pm.decl_acquires.find({fn.cls, fn.name});
    if (da != pm.decl_acquires.end()) {
      for (const std::string& m : da->second) {
        const std::string name = MutexRankName(pm, fn.cls, m);
        const int rank = RankValue(pm, name);
        if (rank >= 0 && rank < min_acq[fi].rank) {
          min_acq[fi] = {rank,
                         name + " (rank " + std::to_string(rank) +
                             "; TARGAD_ACQUIRE on " + QualName(fn) + ")",
                         ""};
        }
      }
    }
  }
  // Fixpoint: propagate the minimum acquirable rank backwards along edges.
  for (bool changed = true; changed;) {
    changed = false;
    for (size_t fi = 0; fi < pm.fns.size(); ++fi) {
      for (const std::vector<size_t>& targets : pm.edges[fi]) {
        for (size_t t : targets) {
          if (min_acq[t].rank < min_acq[fi].rank) {
            min_acq[fi] = {min_acq[t].rank, min_acq[t].desc,
                           QualName(pm.fn(t))};
            changed = true;
          }
        }
      }
    }
  }

  std::set<std::string> reported;
  auto report = [&](const std::string& rel, int line,
                    const std::string& message) {
    if (reported.insert(rel + ":" + std::to_string(line) + ":" + message)
            .second) {
      out.push_back({rel, line, "lock-order", message});
    }
  };

  for (size_t fi = 0; fi < pm.fns.size(); ++fi) {
    const FnSym& fn = pm.fn(fi);
    const FileSymbols& fs = pm.file_of(fi);
    if (!IsSrcModule(fs.module)) continue;  // Tests seed inversions.
    const std::vector<std::pair<std::string, int>> entry = EntryHeld(pm, fi);

    // Direct acquisitions: every rank already held must be strictly lower.
    for (const LockAcquire& acq : fn.acquires) {
      if (acq.rank < 0) continue;
      std::vector<std::pair<std::string, int>> held = entry;
      for (size_t h : acq.held_before) {
        const LockAcquire& prev = fn.acquires[h];
        if (prev.rank >= 0) held.push_back({prev.rank_name, prev.rank});
      }
      for (const auto& [hname, hrank] : held) {
        if (hrank >= acq.rank) {
          report(fs.rel, acq.line,
                 QualName(fn) + " acquires " + acq.rank_name + " (rank " +
                     std::to_string(acq.rank) + ") while holding " + hname +
                     " (rank " + std::to_string(hrank) +
                     "); lock ranks must strictly ascend "
                     "(common/lock_rank.h)");
        }
      }
    }

    // Call sites: nothing reachable from the callee may acquire a rank <=
    // one held at the call.
    for (size_t ci = 0; ci < fn.calls.size(); ++ci) {
      const CallSite& cs = fn.calls[ci];
      std::vector<std::pair<std::string, int>> held = entry;
      for (size_t h : cs.held) {
        const LockAcquire& prev = fn.acquires[h];
        if (prev.rank >= 0) held.push_back({prev.rank_name, prev.rank});
      }
      if (held.empty()) continue;
      for (size_t t : pm.edges[fi][ci]) {
        if (min_acq[t].rank == INT_MAX) continue;
        for (const auto& [hname, hrank] : held) {
          if (min_acq[t].rank <= hrank) {
            const std::string via =
                min_acq[t].via.empty() ? "" : " via " + min_acq[t].via;
            report(fs.rel, cs.line,
                   QualName(fn) + " calls " + QualName(pm.fn(t)) +
                       " while holding " + hname + " (rank " +
                       std::to_string(hrank) + "), which can acquire " +
                       min_acq[t].desc + via +
                       "; lock ranks must strictly ascend "
                       "(common/lock_rank.h)");
          }
        }
      }
    }
  }
  return out;
}

std::vector<Finding> CheckTransitivePurity(const ProgramModel& pm) {
  std::vector<Finding> out;
  std::set<size_t> trusted;
  std::vector<size_t> roots;
  for (size_t fi = 0; fi < pm.fns.size(); ++fi) {
    if (pm.fn(fi).trusted) trusted.insert(fi);
    if (pm.fn(fi).hot && !pm.fn(fi).trusted) roots.push_back(fi);
  }

  std::set<size_t> scanned;
  for (size_t root : roots) {
    std::map<size_t, size_t> parent;
    const std::vector<size_t> order = Reach(pm, root, &parent, &trusted);
    for (size_t fi : order) {
      if (trusted.count(fi) > 0) continue;  // Audited boundary: unscanned.
      if (!scanned.insert(fi).second) continue;
      const FnSym& fn = pm.fn(fi);
      const FileSymbols& fs = pm.file_of(fi);
      std::string suffix;
      if (fi == root) {
        suffix = " in TARGAD_HOT_PATH function " + fn.name + "()";
      } else if (parent.count(fi) > 0 && parent.at(fi) == root) {
        suffix = " in " + fn.name + "(), called from TARGAD_HOT_PATH " +
                 pm.fn(root).name + "()";
      } else {
        suffix = " in " + QualName(fn) + ", reachable from TARGAD_HOT_PATH " +
                 QualName(pm.fn(root));
      }
      ScanHotPathBans(fs.rel, *fs.code, fn.body_begin, fn.body_end, suffix,
                      &out);
    }
  }
  return out;
}

std::vector<Finding> CheckPollThreadReachability(const ProgramModel& pm) {
  std::vector<Finding> out;
  std::set<std::string> reported;
  auto report = [&](const std::string& rel, int line, const char* rule,
                    const std::string& message) {
    if (reported.insert(rel + ":" + std::to_string(line) + ":" + rule)
            .second) {
      out.push_back({rel, line, rule, message});
    }
  };

  static const std::set<std::string> kBlocking = {
      "sleep_for", "sleep_until", "usleep",     "nanosleep",
      "poll",      "select",      "epoll_wait", "accept",
      "accept4",   "connect",     "getline",    "fread",
      "fgets",
  };
  static const std::set<std::string> kGrowth = {
      "push_back", "emplace_back", "resize", "reserve",
  };
  static const std::set<std::string> kAllowedRanks = {
      "kNetSession",
      "kNetReady",
  };

  std::vector<size_t> roots;
  for (size_t fi = 0; fi < pm.fns.size(); ++fi) {
    if (pm.fn(fi).poll_root) roots.push_back(fi);
  }

  for (size_t root : roots) {
    const std::string root_desc =
        "the poll thread (TARGAD_POLL_THREAD root " +
        QualName(pm.fn(root)) + ")";
    std::map<size_t, size_t> parent;
    for (size_t fi : Reach(pm, root, &parent, nullptr)) {
      const FnSym& fn = pm.fn(fi);
      const FileSymbols& fs = pm.file_of(fi);
      if (!IsSrcModule(fs.module)) continue;
      const std::string here =
          fi == root ? ";" : " in " + QualName(fn) + ";";

      // Blocking calls. The root's own poll() is the event wait itself.
      for (const CallSite& cs : fn.calls) {
        if (kBlocking.count(cs.name) == 0) continue;
        if (fi == root && cs.name == "poll") continue;
        report(fs.rel, cs.line, "poll-thread-block",
               cs.name + "() can block" + here + " reachable from " +
                   root_desc);
      }

      // Lock acquisitions outside the declared session/ready ranks.
      for (const LockAcquire& acq : fn.acquires) {
        if (acq.rank_name.empty()) {
          report(fs.rel, acq.line, "poll-thread-lock",
                 "acquires mutex `" + acq.mutex +
                     "` with no resolvable LockRank" + here +
                     " reachable from " + root_desc);
          continue;
        }
        if (kAllowedRanks.count(acq.rank_name) == 0) {
          report(fs.rel, acq.line, "poll-thread-lock",
                 "acquires " + acq.rank_name + " (rank " +
                     std::to_string(acq.rank) + ")" + here +
                     " reachable from " + root_desc +
                     "; only kNetSession/kNetReady may be taken on the "
                     "poll thread");
        }
      }

      // Unbounded growth loops: `push_back` et al. inside `for(;;)` /
      // `while(true)` where the buffer is not visibly reset per iteration.
      const std::vector<Token>& code = *fs.code;
      std::vector<size_t> idx;
      for (size_t i = fn.body_begin; i < fn.body_end; ++i) {
        if (!code[i].pp) idx.push_back(i);
      }
      auto is_unbounded_loop = [&](size_t p, size_t* after) {
        // for ( ; ; )  |  while ( true )  |  while ( 1 )
        if (IsIdent(code[idx[p]], "for") && p + 4 < idx.size() &&
            IsPunct(code[idx[p + 1]], "(") && IsPunct(code[idx[p + 2]], ";") &&
            IsPunct(code[idx[p + 3]], ";") && IsPunct(code[idx[p + 4]], ")")) {
          *after = p + 5;
          return true;
        }
        if (IsIdent(code[idx[p]], "while") && p + 3 < idx.size() &&
            IsPunct(code[idx[p + 1]], "(") &&
            (IsIdent(code[idx[p + 2]], "true") ||
             (code[idx[p + 2]].kind == Tok::kNumber &&
              code[idx[p + 2]].text == "1")) &&
            IsPunct(code[idx[p + 3]], ")")) {
          *after = p + 4;
          return true;
        }
        return false;
      };
      for (size_t p = 0; p < idx.size(); ++p) {
        size_t body = 0;
        if (!is_unbounded_loop(p, &body)) continue;
        // Loop body span [body, close) in idx coordinates.
        size_t close = idx.size();
        if (body < idx.size() && IsPunct(code[idx[body]], "{")) {
          int d = 0;
          for (size_t q = body; q < idx.size(); ++q) {
            if (IsPunct(code[idx[q]], "{")) ++d;
            if (IsPunct(code[idx[q]], "}") && --d == 0) {
              close = q;
              break;
            }
          }
        } else {
          for (size_t q = body; q < idx.size(); ++q) {
            if (IsPunct(code[idx[q]], ";")) {
              close = q;
              break;
            }
          }
        }
        auto reset_in_span = [&](const std::string& recv) {
          for (size_t q = body; q < close; ++q) {
            const Token& u = code[idx[q]];
            if (!IsIdent(u, recv.c_str())) continue;
            // `recv.clear(` / `recv.swap(` / `recv = ...`
            if (q + 2 < close && IsPunct(code[idx[q + 1]], ".") &&
                (IsIdent(code[idx[q + 2]], "clear") ||
                 IsIdent(code[idx[q + 2]], "swap"))) {
              return true;
            }
            if (q + 1 < close && IsPunct(code[idx[q + 1]], "=")) return true;
            // A declaration inside the loop: `Type recv`, `...> recv`,
            // `Type* recv`, `Type& recv`.
            if (q >= 1 && (code[idx[q - 1]].kind == Tok::kIdent ||
                           IsPunct(code[idx[q - 1]], ">") ||
                           IsPunct(code[idx[q - 1]], "*") ||
                           IsPunct(code[idx[q - 1]], "&"))) {
              return true;
            }
          }
          return false;
        };
        for (size_t q = body; q + 1 < close; ++q) {
          const Token& u = code[idx[q]];
          if (u.kind != Tok::kIdent || kGrowth.count(u.text) == 0) continue;
          if (!IsPunct(code[idx[q + 1]], "(")) continue;
          std::string recv;
          if (q >= 2 && (IsPunct(code[idx[q - 1]], ".") ||
                         IsPunct(code[idx[q - 1]], "->")) &&
              code[idx[q - 2]].kind == Tok::kIdent) {
            recv = code[idx[q - 2]].text;
          }
          if (!recv.empty() && reset_in_span(recv)) continue;
          report(fs.rel, u.line, "poll-thread-alloc-loop",
                 (recv.empty() ? std::string("a buffer")
                               : "`" + recv + "`") +
                     " grows via " + u.text +
                     "() inside an unbounded loop" + here +
                     " reachable from " + root_desc +
                     "; reset it each iteration or size it up front");
        }
        p = close;
      }
    }
  }
  return out;
}

}  // namespace lint
}  // namespace targad
