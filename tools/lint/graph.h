// Cross-TU program model for targad-lint: links the per-file symbol tables
// (tools/lint/symbols.h) into a whole-program call graph, then mounts the
// three analysis passes on it:
//
//   lock-order              the static twin of the runtime rank checker in
//                           common/lock_rank.cc. Every `MutexLock` on a
//                           RankedMutex resolves to its TARGAD_LOCK_RANK_TABLE
//                           rank; held-rank sets propagate along call edges
//                           (TARGAD_REQUIRES counts as held on entry,
//                           TARGAD_ACQUIRE as acquired by the call); any path
//                           that could acquire a rank <= one already held is
//                           a finding. src/ modules only — tests seed
//                           deliberate inversions to exercise the runtime
//                           checker.
//   hot-path-*              transitive purity: the TARGAD_HOT_PATH bans
//                           (tools/lint/purity.h) applied over full
//                           call-graph reachability instead of one level
//                           inside one TU. TARGAD_HOT_PATH_TRUSTED marks an
//                           audited boundary: traversal stops there and the
//                           body is not scanned.
//   poll-thread-block       no TARGAD_POLL_THREAD-reachable function may
//                           call a blocking syscall (the root's own poll()
//                           is the one exemption: it IS the event wait).
//   poll-thread-lock        poll-thread-reachable lock acquisitions must
//                           stay inside the declared session/ready ranks
//                           (kNetSession, kNetReady) — anything else can
//                           stall every connection behind one slow path.
//   poll-thread-alloc-loop  no unbounded growth (`push_back` et al. inside
//                           `for(;;)` / `while(true)`) on the poll thread
//                           unless the buffer is visibly reset (cleared,
//                           swapped, assigned, or declared) each iteration.
//
// Resolution is name-based and deliberately conservative: calls that cannot
// be resolved to a unique definition get no edge (see DESIGN.md §16 for the
// rules and the known soundness limits).

#ifndef TARGAD_TOOLS_LINT_GRAPH_H_
#define TARGAD_TOOLS_LINT_GRAPH_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "tools/lint/findings.h"
#include "tools/lint/symbols.h"

namespace targad {
namespace lint {

/// Position of one function in the flattened program model.
struct FnRef {
  size_t file = 0;  // Index into ProgramModel::files.
  size_t fn = 0;    // Index into FileSymbols::fns.
};

struct ProgramModel {
  std::vector<FileSymbols> files;
  std::map<std::string, int> rank_table;  // Merged across files.
  std::vector<FnRef> fns;                 // Flattened function list.
  /// (class, name) -> indices into `fns`; free functions under class "".
  std::map<std::pair<std::string, std::string>, std::vector<size_t>>
      by_cls_name;
  // Merged per-file maps (first definition wins on conflicts):
  std::map<std::pair<std::string, std::string>, std::string> mutex_ranks;
  std::map<std::pair<std::string, std::string>, std::string> member_types;
  std::map<std::pair<std::string, std::string>, std::vector<std::string>>
      decl_requires;
  std::map<std::pair<std::string, std::string>, std::vector<std::string>>
      decl_acquires;
  /// edges[fn][call_site] -> resolved callee indices into `fns` (empty when
  /// the call does not resolve).
  std::vector<std::vector<std::vector<size_t>>> edges;

  const FnSym& fn(size_t i) const {
    return files[fns[i].file].fns[fns[i].fn];
  }
  const FileSymbols& file_of(size_t i) const { return files[fns[i].file]; }
};

/// Links per-file symbol tables into the whole-program model: merges the
/// rank table and annotation maps, resolves every lock acquisition to its
/// declared rank, folds declaration-site TARGAD_REQUIRES into definitions,
/// and resolves call edges.
ProgramModel BuildProgramModel(std::vector<FileSymbols> files);

/// Static lock-order verification (rule `lock-order`). Findings are
/// unfiltered; the caller applies the allow() hatch.
std::vector<Finding> CheckLockOrder(const ProgramModel& pm);

/// Transitive hot-path purity (rules `hot-path-*`).
std::vector<Finding> CheckTransitivePurity(const ProgramModel& pm);

/// Poll-thread blocking-call / lock-rank / alloc-loop reachability (rules
/// `poll-thread-block`, `poll-thread-lock`, `poll-thread-alloc-loop`).
std::vector<Finding> CheckPollThreadReachability(const ProgramModel& pm);

}  // namespace lint
}  // namespace targad

#endif  // TARGAD_TOOLS_LINT_GRAPH_H_
