// Self-test for targad-lint: seeds a scratch tree with one violating and
// one clean case per rule (including the layering and hot-path-purity
// passes), runs RunLint over it, and asserts the exact finding set.

#ifndef TARGAD_TOOLS_LINT_SELFTEST_H_
#define TARGAD_TOOLS_LINT_SELFTEST_H_

namespace targad {
namespace lint {

/// Returns 0 on success, 1 on any mismatch (details on stderr).
int RunSelfTest();

/// Lexer edge-case unit test (tools/lint/lexer_selftest.cc): digit
/// separators, hex floats, UDL suffixes, and line-spliced tokens. Run by
/// RunSelfTest; callable standalone. Returns 0 on success.
int RunLexerSelfTest();

}  // namespace lint
}  // namespace targad

#endif  // TARGAD_TOOLS_LINT_SELFTEST_H_
