#include "tools/lint/findings.h"

#include <algorithm>
#include <sstream>

namespace targad {
namespace lint {

bool IsAllowed(const TokenFile& tf, int line, const std::string& rule) {
  for (int l : {line, line - 1}) {
    if (l < 1) continue;
    for (const Token* c : tf.CommentsOnLine(l)) {
      const std::string& text = c->text;
      const size_t a = text.find("targad-lint: allow(");
      if (a == std::string::npos) continue;
      const size_t start = a + std::string("targad-lint: allow(").size();
      const size_t end = text.find(')', start);
      if (end == std::string::npos) continue;
      std::istringstream in(text.substr(start, end - start));
      std::string item;
      while (std::getline(in, item, ',')) {
        item.erase(std::remove(item.begin(), item.end(), ' '), item.end());
        if (item == rule || item == "*") return true;
      }
    }
  }
  return false;
}

}  // namespace lint
}  // namespace targad
