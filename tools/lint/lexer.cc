#include "tools/lint/lexer.h"

#include <algorithm>
#include <cctype>
#include <cstring>

namespace targad {
namespace lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators we fold into one token, longest first.
// `>>` is deliberately absent: keeping every `>` a single token makes
// template-angle-bracket depth counting in rules trivial (C++ itself made
// the same call for template argument lists).
const char* const kMultiPunct[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", "<=",
    ">=",  "==",  "!=",  "&&",  "||", "+=", "-=", "*=", "/=", "%=",
    "&=",  "|=",  "^=",  ".*",
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  std::vector<Token> Run() {
    while (pos_ < src_.size()) {
      LexOne();
    }
    return std::move(out_);
  }

 private:
  char Cur() const { return src_[pos_]; }
  char Peek(size_t ahead = 1) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      at_line_start_ = true;
      in_pp_ = in_pp_ && pp_continues_;
      pp_continues_ = false;
    } else if (!std::isspace(static_cast<unsigned char>(src_[pos_]))) {
      at_line_start_ = false;
    }
    ++pos_;
  }

  void Emit(Tok kind, std::string text, int line, size_t begin) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.pp = in_pp_;
    t.begin = begin;
    t.end = pos_;
    out_.push_back(std::move(t));
  }

  // Phase-2 line splicing: backslash-newline is deleted wherever it occurs
  // — C++ splices physical lines BEFORE tokenization, not only inside
  // preprocessor directives (the v4 lexer got this wrong, which split
  // spliced identifiers into two tokens and broke IWYU-lite's use
  // tracking). Inside a directive the splice also keeps it alive past the
  // newline.
  bool ConsumeSplice() {
    if (Cur() == '\\' && Peek() == '\n') {
      if (in_pp_) pp_continues_ = true;
      Advance();  // backslash
      Advance();  // newline
      return true;
    }
    return false;
  }

  void LexOne() {
    const char c = Cur();
    if (c == '\\' && Peek() == '\n') {
      ConsumeSplice();
      return;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
      return;
    }
    if (c == '/' && Peek() == '/') {
      LexLineComment();
      return;
    }
    if (c == '/' && Peek() == '*') {
      LexBlockComment();
      return;
    }
    if (c == '#' && at_line_start_) {
      in_pp_ = true;
      const int line = line_;
      const size_t b = pos_;
      Advance();
      Emit(Tok::kPunct, "#", line, b);
      LexPpDirective();
      return;
    }
    if (c == '"' || IsRawStringStart() || IsEncodedStringStart()) {
      LexString();
      return;
    }
    if (c == '\'') {
      LexCharLit();
      return;
    }
    if (IsIdentStart(c)) {
      LexIdent();
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(Peek())))) {
      LexNumber();
      return;
    }
    LexPunct();
  }

  // After the `#`, lex the directive name, then — for #include — treat a
  // following `<...>` as a header-name token (it is not an expression).
  void LexPpDirective() {
    SkipHorizontalSpace();
    if (pos_ >= src_.size() || !IsIdentStart(Cur())) return;
    const int line = line_;
    const size_t b = pos_;
    std::string name = ReadIdent();
    Emit(Tok::kIdent, name, line, b);
    if (name != "include") return;
    SkipHorizontalSpace();
    if (pos_ < src_.size() && Cur() == '<') {
      const int hline = line_;
      const size_t hb = pos_;
      Advance();  // <
      std::string path;
      while (pos_ < src_.size() && Cur() != '>' && Cur() != '\n') {
        path.push_back(Cur());
        Advance();
      }
      if (pos_ < src_.size() && Cur() == '>') Advance();
      Emit(Tok::kHeaderName, path, hline, hb);
    }
  }

  void SkipHorizontalSpace() {
    while (pos_ < src_.size() && (Cur() == ' ' || Cur() == '\t')) Advance();
  }

  void LexLineComment() {
    const int line = line_;
    const size_t b = pos_;
    Advance();  // /
    Advance();  // /
    std::string body;
    while (pos_ < src_.size() && Cur() != '\n') {
      // A spliced line comment continues on the next physical line; keep
      // the newline in the body so CommentsOnLine covers both lines.
      if (ConsumeSplice()) {
        body.push_back('\n');
        continue;
      }
      body.push_back(Cur());
      Advance();
    }
    Emit(Tok::kComment, body, line, b);
  }

  void LexBlockComment() {
    const int line = line_;
    const size_t b = pos_;
    Advance();  // /
    Advance();  // *
    std::string body;
    while (pos_ < src_.size()) {
      if (Cur() == '*' && Peek() == '/') {
        Advance();
        Advance();
        break;
      }
      body.push_back(Cur());
      Advance();
    }
    Emit(Tok::kComment, body, line, b);
  }

  // Raw string: optional encoding prefix, then R"delim( ... )delim".
  bool IsRawStringStart() const {
    size_t p = pos_;
    if (src_[p] == 'u' && p + 1 < src_.size() && src_[p + 1] == '8') p += 2;
    else if (src_[p] == 'u' || src_[p] == 'U' || src_[p] == 'L') p += 1;
    return p + 1 < src_.size() && src_[p] == 'R' && src_[p + 1] == '"';
  }

  // Encoded (non-raw) string: u8"..." u"..." U"..." L"...".
  bool IsEncodedStringStart() const {
    size_t p = pos_;
    if (src_[p] == 'u' && p + 1 < src_.size() && src_[p + 1] == '8') p += 2;
    else if (src_[p] == 'u' || src_[p] == 'U' || src_[p] == 'L') p += 1;
    else return false;
    return p < src_.size() && src_[p] == '"';
  }

  void LexString() {
    const int line = line_;
    const size_t b = pos_;
    bool raw = false;
    // Consume optional encoding prefix and R.
    while (pos_ < src_.size() && Cur() != '"') {
      if (Cur() == 'R') raw = true;
      Advance();
    }
    if (pos_ >= src_.size()) return;
    Advance();  // opening quote
    std::string body;
    if (raw) {
      std::string delim;
      while (pos_ < src_.size() && Cur() != '(') {
        delim.push_back(Cur());
        Advance();
      }
      if (pos_ < src_.size()) Advance();  // (
      const std::string closer = ")" + delim + "\"";
      while (pos_ < src_.size()) {
        if (src_.compare(pos_, closer.size(), closer) == 0) {
          for (size_t i = 0; i < closer.size(); ++i) Advance();
          break;
        }
        body.push_back(Cur());
        Advance();
      }
    } else {
      while (pos_ < src_.size() && Cur() != '"' && Cur() != '\n') {
        if (Cur() == '\\' && pos_ + 1 < src_.size()) {
          body.push_back(Cur());
          Advance();
        }
        body.push_back(Cur());
        Advance();
      }
      if (pos_ < src_.size() && Cur() == '"') Advance();
    }
    Emit(Tok::kString, body, line, b);
  }

  void LexCharLit() {
    const int line = line_;
    const size_t b = pos_;
    Advance();  // opening quote
    std::string body;
    while (pos_ < src_.size() && Cur() != '\'' && Cur() != '\n') {
      if (Cur() == '\\' && pos_ + 1 < src_.size()) {
        body.push_back(Cur());
        Advance();
      }
      body.push_back(Cur());
      Advance();
    }
    if (pos_ < src_.size() && Cur() == '\'') Advance();
    Emit(Tok::kCharLit, body, line, b);
  }

  std::string ReadIdent() {
    std::string s;
    while (pos_ < src_.size()) {
      if (IsIdentChar(Cur())) {
        s.push_back(Cur());
        Advance();
        continue;
      }
      // An identifier spliced across lines is ONE token.
      if (Cur() == '\\' && Peek() == '\n' && IsIdentChar(Peek(2))) {
        ConsumeSplice();
        continue;
      }
      break;
    }
    return s;
  }

  void LexIdent() {
    const int line = line_;
    const size_t b = pos_;
    Emit(Tok::kIdent, ReadIdent(), line, b);
  }

  // pp-number superset: digits, digit separators, hex/bin prefixes, dots,
  // exponent signs, type suffixes, and user-defined-literal suffixes
  // (`10_kb` — pp-numbers admit identifier characters) all fold into one
  // token. A digit separator only continues the number when a digit or
  // letter follows, so a char literal after a number never gets swallowed.
  void LexNumber() {
    const int line = line_;
    const size_t b = pos_;
    std::string s;
    while (pos_ < src_.size()) {
      const char c = Cur();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          c == '_' ||
          (c == '\'' &&
           std::isalnum(static_cast<unsigned char>(Peek())) != 0)) {
        s.push_back(c);
        Advance();
        continue;
      }
      if (c == '\\' && Peek() == '\n' &&
          (std::isalnum(static_cast<unsigned char>(Peek(2))) != 0 ||
           Peek(2) == '.' || Peek(2) == '\'' || Peek(2) == '_')) {
        ConsumeSplice();  // A number spliced across lines is ONE token.
        continue;
      }
      if ((c == '+' || c == '-') && !s.empty()) {
        const char prev =
            static_cast<char>(std::tolower(static_cast<unsigned char>(s.back())));
        if (prev == 'e' || prev == 'p') {
          s.push_back(c);
          Advance();
          continue;
        }
      }
      break;
    }
    Emit(Tok::kNumber, s, line, b);
  }

  void LexPunct() {
    const int line = line_;
    const size_t b = pos_;
    for (const char* mp : kMultiPunct) {
      const size_t n = std::strlen(mp);
      if (src_.compare(pos_, n, mp) == 0) {
        for (size_t i = 0; i < n; ++i) Advance();
        Emit(Tok::kPunct, mp, line, b);
        return;
      }
    }
    std::string s(1, Cur());
    Advance();
    Emit(Tok::kPunct, s, line, b);
  }

  const std::string& src_;
  std::vector<Token> out_;
  size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  bool in_pp_ = false;
  bool pp_continues_ = false;
};

}  // namespace

std::vector<Token> Lex(const std::string& src) { return Lexer(src).Run(); }

std::string CleanText(const std::string& src,
                      const std::vector<Token>& tokens) {
  std::string out = src;
  auto blank = [&out](size_t b, size_t e) {
    for (size_t i = b; i < e && i < out.size(); ++i) {
      if (out[i] != '\n') out[i] = ' ';
    }
  };
  for (const Token& t : tokens) {
    switch (t.kind) {
      case Tok::kComment:
        blank(t.begin, t.end);
        break;
      case Tok::kString:
        // Keep delimiters so neighboring tokens stay separated; the raw
        // string prefix (R"tag( ... )tag") is blanked along with contents.
        blank(t.begin, t.end);
        if (t.begin < out.size()) out[t.begin] = '"';
        if (t.end >= 1 && t.end - 1 < out.size()) out[t.end - 1] = '"';
        break;
      case Tok::kCharLit:
        blank(t.begin, t.end);
        if (t.begin < out.size()) out[t.begin] = '\'';
        if (t.end >= 1 && t.end - 1 < out.size()) out[t.end - 1] = '\'';
        break;
      default:
        break;
    }
  }
  return out;
}

bool IsIdent(const Token& t, const char* name) {
  return t.kind == Tok::kIdent && t.text == name;
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == Tok::kPunct && t.text == text;
}

TokenFile::TokenFile(std::vector<Token> tokens) {
  for (auto& t : tokens) {
    if (t.kind == Tok::kComment) {
      comments_.push_back(std::move(t));
    } else {
      code_.push_back(std::move(t));
    }
  }
}

std::vector<const Token*> TokenFile::CommentsOnLine(int line) const {
  std::vector<const Token*> hits;
  for (const auto& c : comments_) {
    const int span =
        static_cast<int>(std::count(c.text.begin(), c.text.end(), '\n'));
    if (line >= c.line && line <= c.line + span) hits.push_back(&c);
  }
  return hits;
}

}  // namespace lint
}  // namespace targad
