// The lint driver: loads files, lexes them once, and runs every per-file
// rule and tree-wide pass. tools/targad_lint.cc is the CLI shell around
// RunLint(); tools/lint/selftest.cc seeds a scratch tree through the same
// entry point.

#ifndef TARGAD_TOOLS_LINT_DRIVER_H_
#define TARGAD_TOOLS_LINT_DRIVER_H_

#include <filesystem>
#include <string>
#include <vector>

#include "tools/lint/findings.h"
#include "tools/lint/includes.h"
#include "tools/lint/lexer.h"

namespace targad {
namespace lint {

/// One loaded-and-lexed source file.
struct FileData {
  std::filesystem::path path;
  std::string rel;     // Root-relative, '../' prefixes stripped.
  std::string module;  // First path component ("" for src-root files).
  std::string clean;   // Token-derived comment/string-blanked text.
  TokenFile toks;
  std::vector<IncludeDirective> includes;
};

/// Which rule families a run executes. Default: everything.
struct LintOptions {
  /// Per-file rules plus the include-tree passes (layering, cycles, IWYU).
  bool per_file = true;
  /// Whole-program passes over the cross-TU call graph (tools/lint/graph.h):
  /// static lock-order, transitive hot-path purity, poll-thread
  /// reachability.
  bool analyze = true;
};

/// Scans `paths` (files or directories) and returns every finding, with
/// the allow() escape hatch already applied. `root` anchors relative paths
/// for include-guard naming and module assignment; sibling directories of
/// `root` (tools/, tests/, ...) resolve to their own top-level module.
std::vector<Finding> RunLint(const std::filesystem::path& root,
                             const std::vector<std::string>& paths);
std::vector<Finding> RunLint(const std::filesystem::path& root,
                             const std::vector<std::string>& paths,
                             const LintOptions& options);

}  // namespace lint
}  // namespace targad

#endif  // TARGAD_TOOLS_LINT_DRIVER_H_
