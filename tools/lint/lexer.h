// Shared C++ lexer for targad-lint. The v1-v3 linter matched blanked source
// lines with string searches, which meant every rule re-solved (and
// occasionally mis-solved) tokenization: raw strings, digit separators,
// multi-line preprocessor bodies, and `<...>` header names all had ad-hoc
// handling or none. This lexer tokenizes once, correctly, and every rule
// operates on the token stream:
//
//  - comments are TOKENS (kind kComment), not blanks, so the
//    `targad-lint: allow(...)` escape hatch reads real comment text;
//  - string/char literals are single tokens whose text is the literal's
//    CONTENTS, so prose about rand() inside a string can never trip a rule
//    yet rules that care about literal text (none today) could look;
//  - raw strings R"tag(...)tag" are handled, including embedded quotes,
//    backslashes, and newlines;
//  - preprocessor directives are ordinary tokens flagged `pp`, spanning
//    backslash-continued lines, and `#include <...>` yields one
//    kHeaderName token whose text is the bracketed path;
//  - every token carries the 1-based physical line of its first character,
//    so findings keep exact positions across multi-line constructs.
//
// The lexer is deliberately not a preprocessor: no macro expansion, no
// #if evaluation. Rules see the file as written, which is what a source
// checker wants.

#ifndef TARGAD_TOOLS_LINT_LEXER_H_
#define TARGAD_TOOLS_LINT_LEXER_H_

#include <cstddef>
#include <string>
#include <vector>

namespace targad {
namespace lint {

enum class Tok {
  kIdent,       // identifier or keyword
  kNumber,      // numeric literal (hex, floats, digit separators, suffixes)
  kString,      // "..." or R"tag(...)tag"; text = contents without quotes
  kCharLit,     // '...'; text = contents without quotes
  kHeaderName,  // <path> after #include; text = path without brackets
  kPunct,       // one punctuator (maximal munch over a small operator set)
  kComment,     // // or /* */; text = body without delimiters
};

struct Token {
  Tok kind = Tok::kPunct;
  std::string text;
  int line = 1;      // 1-based physical line of the token's first character.
  bool pp = false;   // Part of a preprocessor directive (incl. continuations).
  size_t begin = 0;  // Byte offset of the token's first character in src.
  size_t end = 0;    // Byte offset one past the token's last character.
};

/// Tokenizes `src`. Never fails: unterminated constructs lex to the end of
/// the file rather than erroring (the compiler will complain; the linter
/// just needs to stay line-accurate).
std::vector<Token> Lex(const std::string& src);

/// Returns `src` with every comment blanked and every string/char literal's
/// contents blanked (delimiters kept so tokens stay separated), newlines
/// preserved so line numbers survive. This is the text the line-oriented
/// rules scan; because it is derived from the token stream, raw strings and
/// tricky literals are blanked correctly.
std::string CleanText(const std::string& src,
                      const std::vector<Token>& tokens);

/// True when `t` is the identifier `name`.
bool IsIdent(const Token& t, const char* name);

/// True when `t` is the punctuator `text`.
bool IsPunct(const Token& t, const char* text);

/// One lexed file, split into the code stream rules scan and the comment
/// stream the allow() escape hatch reads.
class TokenFile {
 public:
  TokenFile() = default;
  explicit TokenFile(std::vector<Token> tokens);

  /// All non-comment tokens, in source order.
  const std::vector<Token>& code() const { return code_; }

  /// All comment tokens, in source order.
  const std::vector<Token>& comments() const { return comments_; }

  /// Comment texts attached to `line` (a multi-line block comment is
  /// attached to every line it covers).
  std::vector<const Token*> CommentsOnLine(int line) const;

 private:
  std::vector<Token> code_;
  std::vector<Token> comments_;
};

}  // namespace lint
}  // namespace targad

#endif  // TARGAD_TOOLS_LINT_LEXER_H_
