#include "tools/lint/symbols.h"

#include <cstdlib>
#include <set>

namespace targad {
namespace lint {
namespace {

bool IsControlKeyword(const std::string& s) {
  static const std::set<std::string> kControl = {
      "if",     "for",   "while", "switch", "do",
      "else",   "try",   "catch", "return", "co_return",
  };
  return kControl.count(s) > 0;
}

bool IsTypeKeyword(const std::string& s) {
  return s == "class" || s == "struct" || s == "union" || s == "enum";
}

bool IsCallLikeKeyword(const std::string& s) {
  static const std::set<std::string> kNotCalls = {
      "if",         "for",
      "while",      "switch",
      "return",     "sizeof",
      "alignof",    "catch",
      "new",        "delete",
      "static_cast", "reinterpret_cast",
      "const_cast", "dynamic_cast",
      "decltype",   "noexcept",
      "assert",     "defined",
  };
  return kNotCalls.count(s) > 0;
}

bool IsCvOrStorage(const std::string& s) {
  return s == "const" || s == "volatile" || s == "mutable" ||
         s == "static" || s == "constexpr" || s == "inline" ||
         s == "explicit" || s == "virtual";
}

// The same statement/scope classifier purity.cc uses: a '{' is classified
// from the tokens accumulated since the last statement boundary.
enum class ScopeKind { kNamespace, kType, kFunction, kOther };

struct Scope {
  ScopeKind kind;
  size_t fn_index;   // Valid when kind == kFunction.
  std::string name;  // Type name when kind == kType.
};

// Extracts the type name from a class-head statement: the first identifier
// after the class/struct/union/enum keyword that is not an attribute-style
// macro invocation (`TARGAD_CAPABILITY("mutex")`), a cv/storage keyword, or
// the `class` of `enum class`.
std::string TypeNameFromStmt(const std::vector<Token>& code,
                             const std::vector<size_t>& orig,
                             const std::vector<size_t>& stmt) {
  size_t k = 0;
  while (k < stmt.size() && !(code[orig[stmt[k]]].kind == Tok::kIdent &&
                              IsTypeKeyword(code[orig[stmt[k]]].text))) {
    ++k;
  }
  for (++k; k < stmt.size(); ++k) {
    const Token& t = code[orig[stmt[k]]];
    if (IsPunct(t, ":")) return "";  // Anonymous / base clause reached.
    if (t.kind != Tok::kIdent) continue;
    if (t.text == "class" || IsCvOrStorage(t.text)) continue;
    // Macro invocation in attribute position: skip the balanced parens.
    if (k + 1 < stmt.size() && IsPunct(code[orig[stmt[k + 1]]], "(")) {
      int depth = 0;
      for (++k; k < stmt.size(); ++k) {
        if (IsPunct(code[orig[stmt[k]]], "(")) ++depth;
        if (IsPunct(code[orig[stmt[k]]], ")") && --depth == 0) break;
      }
      continue;
    }
    if (t.text == "alignas") continue;
    return t.text;
  }
  return "";
}

// Collects the identifier arguments of every `MACRO(...)` invocation named
// `macro` inside the statement.
std::vector<std::string> MacroArgs(const std::vector<Token>& code,
                                   const std::vector<size_t>& orig,
                                   const std::vector<size_t>& stmt,
                                   const char* macro) {
  std::vector<std::string> args;
  for (size_t k = 0; k + 1 < stmt.size(); ++k) {
    if (!IsIdent(code[orig[stmt[k]]], macro)) continue;
    if (!IsPunct(code[orig[stmt[k + 1]]], "(")) continue;
    int depth = 0;
    for (size_t j = k + 1; j < stmt.size(); ++j) {
      const Token& t = code[orig[stmt[j]]];
      if (IsPunct(t, "(")) ++depth;
      if (IsPunct(t, ")") && --depth == 0) break;
      if (t.kind == Tok::kIdent) args.push_back(t.text);
    }
  }
  return args;
}

// Parses one variable declaration from a token window (a class-member
// statement or a parameter). Returns (name, type); type follows the
// receiver-resolution rules: plain `T v` / `T* v` / `T& v` give T, and
// `std::shared_ptr<T> v` / `std::unique_ptr<T> v` give the pointee T.
// Returns empty name when the window does not look like a declaration.
struct VarDecl {
  std::string name;
  std::string type;
};

VarDecl ParseVarDecl(const std::vector<const Token*>& w) {
  VarDecl out;
  if (w.size() < 2) return out;
  // Name: the last identifier in the window.
  size_t ni = w.size();
  for (size_t k = w.size(); k-- > 0;) {
    if (w[k]->kind == Tok::kIdent && !IsCvOrStorage(w[k]->text)) {
      ni = k;
      break;
    }
  }
  if (ni == w.size() || ni == 0) return out;
  out.name = w[ni]->text;
  // Type: back-walk over cv-qualifiers, `*`, `&`, `&&`; then either a plain
  // identifier or a closing template angle.
  size_t k = ni;
  while (k > 0) {
    const Token& t = *w[k - 1];
    if (IsPunct(t, "*") || IsPunct(t, "&") || IsPunct(t, "&&") ||
        (t.kind == Tok::kIdent && IsCvOrStorage(t.text))) {
      --k;
      continue;
    }
    break;
  }
  if (k == 0) return VarDecl{};
  const Token& prev = *w[k - 1];
  if (prev.kind == Tok::kIdent) {
    out.type = prev.text;
    return out;
  }
  if (IsPunct(prev, ">")) {
    // Balanced back-walk to the matching '<'.
    int angle = 0;
    size_t open = w.size();
    std::string inner_last;
    for (size_t j = k; j-- > 0;) {
      if (IsPunct(*w[j], ">")) ++angle;
      if (IsPunct(*w[j], "<") && --angle == 0) {
        open = j;
        break;
      }
      if (angle == 1 && w[j]->kind == Tok::kIdent && inner_last.empty()) {
        inner_last = w[j]->text;  // Last identifier inside the angles.
      }
    }
    if (open == w.size() || open == 0) return VarDecl{};
    const Token& tmpl = *w[open - 1];
    if (tmpl.kind != Tok::kIdent) return VarDecl{};
    if (tmpl.text == "shared_ptr" || tmpl.text == "unique_ptr") {
      out.type = inner_last;
    } else {
      out.type = tmpl.text;  // Container itself; rarely a call receiver.
    }
    return out;
  }
  return VarDecl{};
}

// Parses the TARGAD_LOCK_RANK_TABLE X-macro definition (if present) out of
// the preprocessor token stream: `#define TARGAD_LOCK_RANK_TABLE(X)
// X(kName, value) ...`.
void ExtractRankTable(const std::vector<Token>& code,
                      std::map<std::string, int>* table) {
  for (size_t i = 0; i + 2 < code.size(); ++i) {
    if (!code[i].pp || !IsIdent(code[i], "define")) continue;
    if (!IsIdent(code[i + 1], "TARGAD_LOCK_RANK_TABLE")) continue;
    size_t j = i + 2;
    if (j < code.size() && IsPunct(code[j], "(")) {
      while (j < code.size() && code[j].pp && !IsPunct(code[j], ")")) ++j;
      ++j;  // Past the parameter list's ')'.
    }
    // Repeated `X(kName, value)` groups until the directive ends.
    while (j + 5 < code.size() && code[j].pp &&
           code[j].kind == Tok::kIdent && IsPunct(code[j + 1], "(") &&
           code[j + 2].kind == Tok::kIdent && IsPunct(code[j + 3], ",") &&
           code[j + 4].kind == Tok::kNumber && IsPunct(code[j + 5], ")")) {
      (*table)[code[j + 2].text] = std::atoi(code[j + 4].text.c_str());
      j += 6;
    }
    return;
  }
}

// Scans one function body: lock acquisitions with guard lifetime tracking
// (brace scopes plus explicit guard.unlock()/guard.lock() windows), call
// sites with receiver spelling and held-guard sets, and simple local
// variable declarations for receiver typing.
void ScanFnBody(const std::vector<Token>& code, FnSym* fn) {
  struct Guard {
    std::string var;
    size_t acquire;  // Index into fn->acquires.
    int depth;       // Brace depth at declaration; popped when left.
    bool active;
  };
  std::vector<Guard> guards;
  int depth = 0;

  auto held_now = [&]() {
    std::vector<size_t> held;
    for (const Guard& g : guards) {
      if (g.active) held.push_back(g.acquire);
    }
    return held;
  };

  // Indices of non-pp tokens in [body_begin, body_end).
  std::vector<size_t> idx;
  for (size_t i = fn->body_begin; i < fn->body_end; ++i) {
    if (!code[i].pp) idx.push_back(i);
  }

  size_t stmt_start = 0;  // Into idx: first token of the current statement.
  for (size_t p = 0; p < idx.size(); ++p) {
    const Token& t = code[idx[p]];
    if (IsPunct(t, "{")) {
      ++depth;
      stmt_start = p + 1;
      continue;
    }
    if (IsPunct(t, "}")) {
      --depth;
      for (Guard& g : guards) {
        if (g.depth > depth) g.active = false;
      }
      while (!guards.empty() && guards.back().depth > depth) {
        guards.pop_back();
      }
      stmt_start = p + 1;
      continue;
    }
    if (IsPunct(t, ";")) {
      // Statement boundary: try a local variable declaration parse over the
      // window (only windows without parens or '=' initializer clutter).
      std::vector<const Token*> w;
      bool plain = true;
      for (size_t q = stmt_start; q < p; ++q) {
        const Token& u = code[idx[q]];
        if (IsPunct(u, "=")) break;  // `T v = init;` — type is before '='.
        if (IsPunct(u, "(") || IsPunct(u, ")") || IsPunct(u, ",") ||
            IsPunct(u, ".") || IsPunct(u, "->")) {
          plain = false;
          break;
        }
        w.push_back(&u);
      }
      if (plain && w.size() >= 2) {
        const VarDecl d = ParseVarDecl(w);
        if (!d.name.empty() && !d.type.empty() && d.type != "auto" &&
            !IsControlKeyword(d.type)) {
          fn->local_types.emplace(d.name, d.type);
        }
      }
      stmt_start = p + 1;
      continue;
    }
    if (t.kind != Tok::kIdent) continue;

    // `MutexLock guard(&mu_);` — a scoped acquisition.
    if (t.text == "MutexLock" && p + 2 < idx.size() &&
        code[idx[p + 1]].kind == Tok::kIdent &&
        IsPunct(code[idx[p + 2]], "(")) {
      const std::string var = code[idx[p + 1]].text;
      std::string mutex;
      int pd = 0;
      size_t q = p + 2;
      for (; q < idx.size(); ++q) {
        const Token& u = code[idx[q]];
        if (IsPunct(u, "(")) ++pd;
        if (IsPunct(u, ")") && --pd == 0) break;
        if (u.kind == Tok::kIdent && u.text != "this") mutex = u.text;
      }
      LockAcquire acq;
      acq.mutex = mutex;
      acq.line = t.line;
      acq.held_before = held_now();
      const size_t acq_index = fn->acquires.size();
      fn->acquires.push_back(std::move(acq));
      guards.push_back(Guard{var, acq_index, depth, true});
      p = q;  // Past the ')': the guard decl is not a call site.
      continue;
    }

    // `guard.unlock()` / `guard.lock()` — an explicit release/reacquire
    // window on a named guard.
    if (p + 3 < idx.size() && IsPunct(code[idx[p + 1]], ".") &&
        code[idx[p + 2]].kind == Tok::kIdent &&
        IsPunct(code[idx[p + 3]], "(")) {
      const std::string& m = code[idx[p + 2]].text;
      if (m == "unlock" || m == "lock") {
        Guard* g = nullptr;
        for (Guard& cand : guards) {
          if (cand.var == t.text) g = &cand;
        }
        if (g != nullptr) {
          g->active = (m == "lock");
          p += 3;
          continue;
        }
      }
    }

    // Generic call site: identifier followed by '('.
    if (p + 1 < idx.size() && IsPunct(code[idx[p + 1]], "(") &&
        !IsCallLikeKeyword(t.text)) {
      CallSite cs;
      cs.name = t.text;
      cs.line = t.line;
      cs.held = held_now();
      if (p >= 2) {
        const Token& sep = code[idx[p - 1]];
        const Token& recv = code[idx[p - 2]];
        if (IsPunct(sep, ".") || IsPunct(sep, "->")) {
          cs.via_member = true;
          if (recv.kind == Tok::kIdent) cs.receiver = recv.text;
        } else if (IsPunct(sep, "::")) {
          cs.via_scope = true;
          if (recv.kind == Tok::kIdent) cs.receiver = recv.text;
        }
      }
      fn->calls.push_back(std::move(cs));
      continue;
    }
  }
}

}  // namespace

FileSymbols ExtractFileSymbols(const std::string& rel,
                               const std::string& module,
                               const std::vector<Token>& code) {
  FileSymbols fs;
  fs.rel = rel;
  fs.module = module;
  fs.code = &code;
  ExtractRankTable(code, &fs.rank_table);

  // Non-preprocessor view, with indices back into the original stream.
  std::vector<size_t> orig;
  orig.reserve(code.size());
  for (size_t i = 0; i < code.size(); ++i) {
    if (!code[i].pp) orig.push_back(i);
  }

  std::vector<Scope> stack;
  std::vector<size_t> stmt;  // Indices into `orig` since the last boundary.
  int paren = 0;

  auto innermost_type = [&]() -> std::string {
    for (size_t k = stack.size(); k-- > 0;) {
      if (stack[k].kind == ScopeKind::kType) return stack[k].name;
    }
    return "";
  };
  auto in_body = [&]() {
    for (const Scope& s : stack) {
      if (s.kind == ScopeKind::kFunction || s.kind == ScopeKind::kOther) {
        return true;
      }
    }
    return false;
  };
  auto at_type_scope = [&]() {
    return !stack.empty() && stack.back().kind == ScopeKind::kType;
  };

  auto classify = [&](const std::vector<size_t>& s) -> ScopeKind {
    if (!stack.empty() && (stack.back().kind == ScopeKind::kFunction ||
                           stack.back().kind == ScopeKind::kOther)) {
      return ScopeKind::kOther;
    }
    if (s.empty()) return ScopeKind::kOther;
    const Token& first = code[orig[s[0]]];
    if (IsIdent(first, "namespace")) return ScopeKind::kNamespace;
    for (size_t k : s) {
      const Token& t = code[orig[k]];
      if (IsPunct(t, "(")) break;
      if (t.kind == Tok::kIdent && IsTypeKeyword(t.text)) {
        return ScopeKind::kType;
      }
    }
    if (first.kind == Tok::kIdent && IsControlKeyword(first.text)) {
      return ScopeKind::kOther;
    }
    int depth = 0;
    bool has_call_shape = false;
    for (size_t j = 0; j < s.size(); ++j) {
      const Token& t = code[orig[s[j]]];
      if (IsPunct(t, "(")) {
        ++depth;
        if (!has_call_shape && j > 0 &&
            code[orig[s[j - 1]]].kind == Tok::kIdent) {
          has_call_shape = true;
        }
        continue;
      }
      if (IsPunct(t, ")")) {
        --depth;
        continue;
      }
      if (depth == 0 && IsPunct(t, "=")) return ScopeKind::kOther;
    }
    return has_call_shape ? ScopeKind::kFunction : ScopeKind::kOther;
  };

  // Builds the FnSym for a function-classified '{' from its signature
  // statement: name, qualifier class, annotations, and parameter types.
  auto make_fn = [&](const std::vector<size_t>& s, size_t body) -> FnSym {
    FnSym fn;
    fn.line = code[orig[s[0]]].line;
    fn.body_begin = body;
    fn.body_end = code.size();  // Patched when the scope pops.
    size_t name_j = s.size();
    for (size_t j = 0; j + 1 < s.size(); ++j) {
      const Token& t = code[orig[s[j]]];
      if (t.kind == Tok::kIdent && !IsCallLikeKeyword(t.text) &&
          IsPunct(code[orig[s[j + 1]]], "(")) {
        fn.name = t.text;
        name_j = j;
        break;
      }
    }
    // Out-of-line qualifier: `Cls::Name(` or `ClsT<T>::Name(`; the class is
    // the innermost (last) qualifier component. A '~' marks a destructor.
    if (name_j != s.size() && name_j >= 1 &&
        IsPunct(code[orig[s[name_j - 1]]], "~")) {
      fn.name = "~" + fn.name;
      --name_j;
    }
    if (name_j != s.size() && name_j >= 2 &&
        IsPunct(code[orig[s[name_j - 1]]], "::")) {
      size_t q = name_j - 1;  // At the '::'.
      if (q >= 1) {
        const Token& before = code[orig[s[q - 1]]];
        if (before.kind == Tok::kIdent) {
          fn.cls = before.text;
        } else if (IsPunct(before, ">")) {
          int angle = 0;
          for (size_t j = q; j-- > 0;) {
            if (IsPunct(code[orig[s[j]]], ">")) ++angle;
            if (IsPunct(code[orig[s[j]]], "<") && --angle == 0) {
              if (j >= 1 && code[orig[s[j - 1]]].kind == Tok::kIdent) {
                fn.cls = code[orig[s[j - 1]]].text;
              }
              break;
            }
          }
        }
      }
    }
    if (fn.cls.empty()) fn.cls = innermost_type();
    for (size_t j : s) {
      const Token& t = code[orig[j]];
      if (IsIdent(t, "TARGAD_HOT_PATH")) fn.hot = true;
      if (IsIdent(t, "TARGAD_HOT_PATH_TRUSTED")) fn.trusted = true;
      if (IsIdent(t, "TARGAD_POLL_THREAD")) fn.poll_root = true;
    }
    fn.requires_mutexes = MacroArgs(code, orig, s, "TARGAD_REQUIRES");
    // Parameter types feed receiver resolution: split the first top-level
    // paren group on commas and parse each piece as a declaration.
    if (name_j != s.size()) {
      std::vector<const Token*> piece;
      int depth = 0;
      for (size_t j = name_j + 1; j < s.size(); ++j) {
        const Token& t = code[orig[s[j]]];
        if (IsPunct(t, "(")) {
          if (++depth == 1) continue;
        }
        if ((IsPunct(t, ")") && --depth == 0) ||
            (IsPunct(t, ",") && depth == 1)) {
          const VarDecl d = ParseVarDecl(piece);
          if (!d.name.empty() && !d.type.empty()) {
            fn.local_types.emplace(d.name, d.type);
          }
          piece.clear();
          if (depth == 0) break;
          continue;
        }
        if (depth >= 1) piece.push_back(&t);
      }
    }
    return fn;
  };

  for (size_t i = 0; i < orig.size(); ++i) {
    const Token& t = code[orig[i]];

    // RankedMutex declarations are captured by direct lookahead, outside
    // the statement machine: a brace-initialized member (`RankedMutex
    // mu_{LockRank::kX};`) would otherwise be split by the '{' scope push.
    if (t.kind == Tok::kIdent && t.text == "RankedMutex" && !in_body() &&
        i + 2 < orig.size()) {
      const Token& name_t = code[orig[i + 1]];
      const Token& open = code[orig[i + 2]];
      if (name_t.kind == Tok::kIdent &&
          (IsPunct(open, "{") || IsPunct(open, "("))) {
        std::string rank;
        for (size_t j = i + 3; j < orig.size() && j < i + 10; ++j) {
          const Token& u = code[orig[j]];
          if (IsPunct(u, "}") || IsPunct(u, ")")) break;
          if (u.kind == Tok::kIdent) rank = u.text;
        }
        if (!rank.empty()) {
          fs.mutex_ranks[{innermost_type(), name_t.text}] = rank;
        }
      }
    }

    if (IsPunct(t, "(")) {
      ++paren;
      stmt.push_back(i);
      continue;
    }
    if (IsPunct(t, ")")) {
      --paren;
      stmt.push_back(i);
      continue;
    }
    if (paren > 0) {
      stmt.push_back(i);
      continue;
    }
    if (IsPunct(t, ";")) {
      // Class-scope statements carry member declarations and method
      // declarations with lock annotations.
      if (at_type_scope() && !stmt.empty()) {
        const std::string cls = stack.back().name;
        bool has_paren = false;
        for (size_t j : stmt) {
          if (IsPunct(code[orig[j]], "(")) {
            has_paren = true;
            break;
          }
        }
        if (has_paren) {
          // Method declaration: record TARGAD_REQUIRES / TARGAD_ACQUIRE.
          std::string mname;
          for (size_t j = 0; j + 1 < stmt.size(); ++j) {
            const Token& u = code[orig[stmt[j]]];
            if (u.kind == Tok::kIdent && !IsCallLikeKeyword(u.text) &&
                u.text.rfind("TARGAD_", 0) != 0 &&
                IsPunct(code[orig[stmt[j + 1]]], "(")) {
              mname = u.text;
              break;
            }
          }
          if (!mname.empty()) {
            auto req = MacroArgs(code, orig, stmt, "TARGAD_REQUIRES");
            if (!req.empty()) fs.decl_requires[{cls, mname}] = req;
            auto acq = MacroArgs(code, orig, stmt, "TARGAD_ACQUIRE");
            if (!acq.empty()) fs.decl_acquires[{cls, mname}] = acq;
          }
        } else {
          // Member declaration: record its type for receiver resolution.
          std::vector<const Token*> w;
          for (size_t j : stmt) {
            const Token& u = code[orig[j]];
            if (IsPunct(u, "=")) break;
            if (u.kind == Tok::kIdent && u.text.rfind("TARGAD_", 0) == 0) {
              break;  // Trailing annotation (GUARDED_BY etc.).
            }
            w.push_back(&u);
          }
          const VarDecl d = ParseVarDecl(w);
          if (!d.name.empty() && !d.type.empty()) {
            fs.member_types.emplace(std::make_pair(cls, d.name), d.type);
          }
        }
      }
      stmt.clear();
      continue;
    }
    if (IsPunct(t, "{")) {
      const ScopeKind kind = classify(stmt);
      Scope scope{kind, 0, ""};
      if (kind == ScopeKind::kType) {
        scope.name = TypeNameFromStmt(code, orig, stmt);
      } else if (kind == ScopeKind::kFunction) {
        scope.fn_index = fs.fns.size();
        fs.fns.push_back(make_fn(stmt, orig[i]));
      }
      stack.push_back(std::move(scope));
      stmt.clear();
      continue;
    }
    if (IsPunct(t, "}")) {
      if (!stack.empty()) {
        if (stack.back().kind == ScopeKind::kFunction) {
          fs.fns[stack.back().fn_index].body_end = orig[i] + 1;
        }
        stack.pop_back();
      }
      stmt.clear();
      continue;
    }
    stmt.push_back(i);
  }

  for (FnSym& fn : fs.fns) ScanFnBody(code, &fn);
  return fs;
}

}  // namespace lint
}  // namespace targad
