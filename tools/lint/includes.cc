#include "tools/lint/includes.h"

namespace targad {
namespace lint {
namespace {

bool IsDeclKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",      "while",     "switch",   "return", "sizeof",
      "alignof",  "catch",    "new",       "delete",   "do",     "else",
      "case",     "default",  "break",     "continue", "goto",   "const",
      "constexpr", "static",  "inline",    "virtual",  "override",
      "final",    "explicit", "namespace", "using",    "typedef",
      "template", "typename", "class",     "struct",   "enum",   "union",
      "public",   "private",  "protected", "friend",   "operator",
      "noexcept", "decltype", "auto",      "void",     "bool",   "char",
      "int",      "long",     "short",     "float",    "double", "unsigned",
      "signed",   "true",     "false",     "nullptr",  "this",   "mutable",
      "static_cast", "reinterpret_cast", "const_cast", "dynamic_cast",
      "try",      "throw",    "extern",    "volatile", "requires",
      "concept",  "co_return", "co_await", "co_yield",
  };
  return kKeywords.count(s) > 0;
}

}  // namespace

std::vector<IncludeDirective> ExtractIncludes(const TokenFile& tf) {
  std::vector<IncludeDirective> out;
  const std::vector<Token>& code = tf.code();
  for (size_t i = 0; i + 2 < code.size(); ++i) {
    if (!code[i].pp || !IsPunct(code[i], "#")) continue;
    if (!IsIdent(code[i + 1], "include")) continue;
    const Token& target = code[i + 2];
    if (target.kind != Tok::kString && target.kind != Tok::kHeaderName) {
      continue;
    }
    IncludeDirective inc;
    inc.path = target.text;
    inc.line = target.line;
    inc.system = target.kind == Tok::kHeaderName;
    for (const Token* c : tf.CommentsOnLine(inc.line)) {
      if (c->text.find("IWYU pragma:") != std::string::npos) {
        inc.exempt = true;
      }
    }
    out.push_back(std::move(inc));
  }
  return out;
}

std::set<std::string> CollectHeaderSymbols(const std::vector<Token>& code) {
  std::set<std::string> symbols;
  for (size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != Tok::kIdent) continue;
    const bool has_next = i + 1 < code.size();
    // Macro definitions.
    if (t.pp && IsIdent(t, "define") && has_next &&
        code[i + 1].kind == Tok::kIdent) {
      symbols.insert(code[i + 1].text);
      continue;
    }
    if (t.pp) continue;
    // Type names.
    if ((t.text == "class" || t.text == "struct" || t.text == "union" ||
         t.text == "enum") &&
        has_next && code[i + 1].kind == Tok::kIdent &&
        !IsDeclKeyword(code[i + 1].text)) {
      symbols.insert(code[i + 1].text);
      continue;
    }
    // Using aliases: `using Name = ...`.
    if (t.text == "using" && i + 2 < code.size() &&
        code[i + 1].kind == Tok::kIdent && IsPunct(code[i + 2], "=")) {
      symbols.insert(code[i + 1].text);
      continue;
    }
    if (IsDeclKeyword(t.text)) continue;
    // Call targets (functions, methods, functional casts) and declared
    // names (constants, fields, aliases) — generous on purpose.
    if (has_next &&
        (IsPunct(code[i + 1], "(") || IsPunct(code[i + 1], "=") ||
         IsPunct(code[i + 1], ";") || IsPunct(code[i + 1], "{") ||
         IsPunct(code[i + 1], "["))) {
      symbols.insert(t.text);
    }
  }
  return symbols;
}

std::set<std::string> CollectUsedIdentifiers(const std::vector<Token>& code) {
  // Every identifier token counts as a use — including macro INVOCATIONS
  // (TARGAD_GUARDED_BY, TARGAD_REQUIRES, DCHECK, ...), which pair with the
  // `#define` names CollectHeaderSymbols collects, so annotation-only
  // includes are never flagged unused. This guarantee leans on the lexer
  // splicing backslash-newline universally: a macro name spliced across
  // physical lines still arrives here as one identifier token.
  std::set<std::string> used;
  for (const Token& t : code) {
    if (t.kind == Tok::kIdent) used.insert(t.text);
  }
  return used;
}

}  // namespace lint
}  // namespace targad
