// Include extraction and the IWYU-lite symbol model for the tree-wide
// include passes (layering back-edges, cycles, .cc includes, unused
// includes). Extraction is token-based: `#include "x"` and `#include <x>`
// are read from the preprocessor token stream, never from raw text, so a
// string literal that happens to contain "#include" is inert.

#ifndef TARGAD_TOOLS_LINT_INCLUDES_H_
#define TARGAD_TOOLS_LINT_INCLUDES_H_

#include <set>
#include <string>
#include <vector>

#include "tools/lint/lexer.h"

namespace targad {
namespace lint {

struct IncludeDirective {
  std::string path;     // As written, without quotes/brackets.
  int line = 0;
  bool system = false;  // <...> form.
  bool exempt = false;  // `IWYU pragma:` comment on the include line.
};

/// Every #include in the file, in order.
std::vector<IncludeDirective> ExtractIncludes(const TokenFile& tf);

/// The public-symbol model of a header, for the unused-include heuristic:
/// macro names, type names (class/struct/enum/union), using-alias names,
/// any identifier spelled as a call target, and any identifier that reads
/// as a declared name (followed by `=`, `;`, `{`, or `[`). The set is
/// deliberately generous — a missed symbol causes a false "unused", so we
/// over-collect and accept false "used".
std::set<std::string> CollectHeaderSymbols(const std::vector<Token>& code);

/// All identifiers mentioned in a file (macro uses, calls, types alike) —
/// the usage side of the unused-include test.
std::set<std::string> CollectUsedIdentifiers(const std::vector<Token>& code);

}  // namespace lint
}  // namespace targad

#endif  // TARGAD_TOOLS_LINT_INCLUDES_H_
