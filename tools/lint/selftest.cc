#include "tools/lint/selftest.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tools/lint/driver.h"

namespace targad {
namespace lint {
namespace {

namespace fs = std::filesystem;

struct SelfCase {
  std::string file;
  std::string contents;
  // Rules this file must trip, as (rule, line) pairs; empty = must be clean.
  std::vector<std::pair<std::string, int>> expect;
};

std::vector<SelfCase> Cases() {
  return {
      {"sub/bad_guard.h",
       "#ifndef WRONG_GUARD_H_\n#define WRONG_GUARD_H_\n#endif\n",
       {{"include-guard", 1}}},
      {"sub/no_define.h",
       "#ifndef TARGAD_SUB_NO_DEFINE_H_\n#define SOMETHING_ELSE\n#endif\n",
       {{"include-guard", 1}}},
      {"sub/using_ns.h",
       "#ifndef TARGAD_SUB_USING_NS_H_\n#define TARGAD_SUB_USING_NS_H_\n"
       "using namespace std;\n#endif\n",
       {{"using-namespace-header", 3}}},
      {"sub/banned.cc",
       "int f() {\n"
       "  int x = rand();\n"
       "  printf(\"%d\", x);\n"
       "  std::cout << x;\n"
       "  if (x < 0) throw 1;\n"
       "  return x;\n}\n",
       {{"banned-rand", 2},
        {"banned-io", 3},
        {"banned-io", 4},
        {"naked-throw", 5}}},
      {"sub/retnotok.cc",
       "Result<int> Load(int v);\n"
       "Status A(int v) {\n"
       "  TARGAD_RETURN_NOT_OK(Load(v));\n"
       "  return Status::OK();\n}\n"
       "Status B(Result<int> r) {\n"
       "  TARGAD_RETURN_NOT_OK(r.ValueOrDie());\n"
       "  return Status::OK();\n}\n",
       {{"return-not-ok-result", 3}, {"return-not-ok-result", 7}}},
      // The escape hatch silences the named rule(s) on that line (same line
      // or the line directly above)...
      {"sub/allowed.cc",
       "int g() {\n"
       "  return rand();  // targad-lint: allow(banned-rand)\n}\n"
       "int h() {\n"
       "  // targad-lint: allow(banned-io,banned-rand)\n"
       "  printf(\"%d\", rand());\n}\n",
       {}},
      // ...but only the named rule.
      {"sub/allow_wrong_rule.cc",
       "int g() {\n"
       "  return rand();  // targad-lint: allow(banned-io)\n}\n",
       {{"banned-rand", 2}}},
      // ...and an allow() spelled inside a STRING is inert (the hatch reads
      // comment tokens, not raw text).
      {"sub/allow_in_string.cc",
       "const char* fake = \"targad-lint: allow(banned-rand)\";\n"
       "int g() {\n"
       "  return rand();\n}\n",
       {{"banned-rand", 3}}},
      // mutex-guarded-by: `depth_` sits below the mutex without an
      // annotation (line 8). Everything around it is exempt: fields above
      // the mutex, condition variables, annotated fields, statics,
      // atomics, and an allow()ed line. The `};` closes the scope, so the
      // trailing `after_` is clean.
      {"sub/guarded.h",
       "#ifndef TARGAD_SUB_GUARDED_H_\n"
       "#define TARGAD_SUB_GUARDED_H_\n"
       "class Pool {\n"
       " private:\n"
       "  const int capacity_ = 4;\n"
       "  mutable RankedMutex mu_{LockRank::kThreadPool};\n"
       "  std::condition_variable_any cv_;\n"
       "  int depth_ = 0;\n"
       "  int safe_ TARGAD_GUARDED_BY(mu_) = 0;\n"
       "  static int counter_;\n"
       "  std::atomic<int> hits_{0};\n"
       "  int waived_;  // targad-lint: allow(mutex-guarded-by)\n"
       "};\n"
       "int after_ = 0;\n"
       "#endif\n",
       {{"mutex-guarded-by", 8}}},
      // raw-mutex-lock: direct lock calls on mutex-named receivers (member
      // access or pointer) are flagged; the same calls on a MutexLock
      // guard named `lock` are the blessed manual-window form, and the
      // escape hatch still works.
      {"sub/rawlock.cc",
       "void f() {\n"
       "  mu_.lock();\n"
       "  mu_.unlock();\n"
       "  if (g_mutex->try_lock()) return;\n"
       "  lock.unlock();\n"
       "  swap_mu_.lock();  // targad-lint: allow(raw-mutex-lock)\n"
       "}\n",
       {{"raw-mutex-lock", 2},
        {"raw-mutex-lock", 3},
        {"raw-mutex-lock", 4}}},
      // lock-rank-table: kB reuses rank 10 (line 3), kA is declared twice
      // (line 4); kC is a fresh name with a fresh rank and stays clean.
      {"sub/ranks.cc",
       "#define TARGAD_LOCK_RANK_TABLE(X) \\\n"
       "  X(kA, 10)                       \\\n"
       "  X(kB, 10)                       \\\n"
       "  X(kA, 20)                       \\\n"
       "  X(kC, 30)\n",
       {{"lock-rank-table", 3}, {"lock-rank-table", 4}}},
      // raw-dense-loop: a hand-written triple-loop matmul fires (line 5, on
      // the accumulate line), as does a braceless nested accumulation over
      // At() (line 10); the escape hatch still works (line 13).
      {"sub/dense.cc",
       "void MatMul(double* c, const double* a, const double* b, int n) {\n"
       "  for (int i = 0; i < n; ++i) {\n"
       "    for (int j = 0; j < n; ++j) {\n"
       "      for (int k = 0; k < n; ++k) {\n"
       "        c[i * n + j] += a[i * n + k] * b[k * n + j];\n"
       "      }\n"
       "    }\n"
       "  }\n"
       "  for (int i = 0; i < n; ++i)\n"
       "    for (int j = 0; j < n; ++j) out.At(i, j) += x.At(i, j) * w[j];\n"
       "  for (int i = 0; i < n; ++i) {\n"
       "    for (int j = 0; j < n; ++j) {\n"
       "      c[i] += a[i * n + j] * b[j];  // targad-lint: allow(raw-dense-loop)\n"
       "    }\n"
       "  }\n"
       "}\n",
       {{"raw-dense-loop", 5}, {"raw-dense-loop", 10}}},
      // ...the kernel layer itself is exempt by path...
      {"nn/kernels/fast.cc",
       "void Gemm(double* c, const double* a, const double* b, int n) {\n"
       "  for (int i = 0; i < n; ++i) {\n"
       "    for (int j = 0; j < n; ++j) {\n"
       "      c[i * n + j] += a[i * n + j] * b[j * n + i];\n"
       "    }\n"
       "  }\n"
       "}\n",
       {}},
      // ...and legitimate shapes stay clean: a depth-1 dot product, a
      // nested sum without multiplication, and a single-subscript weighted
      // reduction over a hoisted scalar.
      {"sub/dense_ok.cc",
       "double f(const double* a, const double* b, double* s, int n) {\n"
       "  double dot = 0.0;\n"
       "  for (int i = 0; i < n; ++i) dot += a[i] * b[i];\n"
       "  for (int i = 0; i < n; ++i) {\n"
       "    for (int j = 0; j < n; ++j) s[j] += a[i * n + j];\n"
       "    const double r = b[i];\n"
       "    for (int j = 0; j < n; ++j) {\n"
       "      const double diff = a[i * n + j];\n"
       "      s[j] += r * diff * diff;\n"
       "    }\n"
       "  }\n"
       "  return dot;\n"
       "}\n",
       {}},
      // Comments and strings never trip rules; snprintf is not printf; a
      // legitimate TARGAD_RETURN_NOT_OK on a Status call is clean, as are
      // the `.status()` adapter and an ambiguous Status/Result overload set.
      {"sub/immune.cc",
       "// rand() and printf() and throw, discussed in prose.\n"
       "/* std::cout << rand(); */\n"
       "const char* s = \"printf(rand()) throw\";\n"
       "int n = snprintf(buf, 4, \"x\");\n"
       "Status DoIt();\n"
       "Status Fit(int x);\n"
       "Result<int> Fit(double x);\n"
       "Result<int> MakeIt();\n"
       "Status Run() {\n"
       "  TARGAD_RETURN_NOT_OK(DoIt());\n"
       "  TARGAD_RETURN_NOT_OK(Fit(1));\n"
       "  TARGAD_RETURN_NOT_OK(MakeIt().status());\n"
       "  return Status::OK();\n}\n",
       {}},
      // Raw strings are fully opaque to every rule — this is the false-
      // positive class the v3 blanking pass got wrong (it ended the string
      // at the first inner quote, exposing the rest as code).
      {"sub/rawstr.cc",
       "const char* r = R\"(say \"hi\" rand() and printf( and throw)\";\n"
       "const char* t = R\"tag(std::cout << mu_.lock();)tag\";\n"
       "int k = 0;\n",
       {}},
      // ---- include-layering: a lower layer including a higher one is a
      // back-edge; the reverse direction is clean.
      {"common/uses_serve.cc", "#include \"serve/api.h\"\n",
       {{"include-layering", 1}}},
      {"net/uses_serve.cc", "#include \"serve/api.h\"\n", {}},
      // ---- include-cc: implementation files are not includable.
      {"sub/incl_cc.cc", "#include \"sub/other.cc\"\n", {{"include-cc", 1}}},
      // ---- include-cycle: a.h -> b.h -> a.h closes a cycle at b.h:3.
      {"sub/cyc_a.h",
       "#ifndef TARGAD_SUB_CYC_A_H_\n#define TARGAD_SUB_CYC_A_H_\n"
       "#include \"sub/cyc_b.h\"\n#endif\n",
       {}},
      {"sub/cyc_b.h",
       "#ifndef TARGAD_SUB_CYC_B_H_\n#define TARGAD_SUB_CYC_B_H_\n"
       "#include \"sub/cyc_a.h\"\n#endif\n",
       {{"include-cycle", 3}}},
      // ---- unused-include: unused.h's symbols never appear in the TU
      // (line 2 fires); used.h is consumed, kept.h carries an IWYU pragma,
      // and impl.cc includes its own header — all clean.
      {"common/used.h",
       "#ifndef TARGAD_COMMON_USED_H_\n#define TARGAD_COMMON_USED_H_\n"
       "struct UsedThing { int v; };\n#endif\n",
       {}},
      {"common/unused.h",
       "#ifndef TARGAD_COMMON_UNUSED_H_\n#define TARGAD_COMMON_UNUSED_H_\n"
       "struct NeverMentioned { int w; };\n#endif\n",
       {}},
      {"common/kept.h",
       "#ifndef TARGAD_COMMON_KEPT_H_\n#define TARGAD_COMMON_KEPT_H_\n"
       "struct KeptThing { int u; };\n#endif\n",
       {}},
      {"serve/consumer.cc",
       "#include \"common/kept.h\"  // IWYU pragma: keep\n"
       "#include \"common/unused.h\"\n"
       "#include \"common/used.h\"\n"
       "UsedThing MakeThing() { return UsedThing{}; }\n",
       {{"unused-include", 2}}},
      {"serve/impl.h",
       "#ifndef TARGAD_SERVE_IMPL_H_\n#define TARGAD_SERVE_IMPL_H_\n"
       "struct ImplOnly { int z; };\n#endif\n",
       {}},
      {"serve/impl.cc",
       "#include \"serve/impl.h\"\nint Standalone() { return 3; }\n", {}},
      // ---- hot-path purity: one violation per rule id, plus one-level
      // propagation into a same-file helper; an unannotated function that
      // allocates stays clean.
      {"serve/hot.cc",
       "TARGAD_HOT_PATH int HotAlloc(int n) {\n"
       "  int* p = new int[n];\n"
       "  return p[0];\n"
       "}\n"
       "TARGAD_HOT_PATH void HotGrow(Vec* v) {\n"
       "  v->push_back(1);\n"
       "}\n"
       "TARGAD_HOT_PATH void HotString() {\n"
       "  std::string s(16, 'x');\n"
       "}\n"
       "TARGAD_HOT_PATH void HotLock() {\n"
       "  MutexLock lock(&reg_mu_);\n"
       "}\n"
       "TARGAD_HOT_PATH void HotLog(int x) {\n"
       "  TARGAD_LOG(\"x=%d\", x);\n"
       "}\n"
       "TARGAD_HOT_PATH int HotBlock(int fd) {\n"
       "  return poll(nullptr, 0, fd);\n"
       "}\n"
       "TARGAD_HOT_PATH int HotCallsHelper(int n) { return ScratchHelper(n); }\n"
       "int ScratchHelper(int n) {\n"
       "  Vec tmp;\n"
       "  tmp.reserve(n);\n"
       "  return n;\n"
       "}\n"
       "int ColdAllocates(int n) { return *(new int(n)); }\n",
       {{"hot-path-alloc", 2},
        {"hot-path-alloc", 6},
        {"hot-path-string", 9},
        {"hot-path-lock", 12},
        {"hot-path-log", 15},
        {"hot-path-block", 18},
        {"hot-path-alloc", 23}}},
      // The purity contract's legal forms: subscript writes into sized
      // buffers, arithmetic, TARGAD_DCHECK, and append into a reused
      // buffer (capacity amortizes; growth-by-construction is what's
      // banned).
      {"serve/hot_ok.cc",
       "TARGAD_HOT_PATH double HotClean(const double* a, double* out,\n"
       "                                int n, Buf* sink) {\n"
       "  double acc = 0.0;\n"
       "  for (int i = 0; i < n; ++i) acc += a[i];\n"
       "  out[0] = acc;\n"
       "  TARGAD_DCHECK(n > 0);\n"
       "  sink->append(out, 1);\n"
       "  return acc;\n"
       "}\n"
       "TARGAD_HOT_PATH size_t HotNpos(const std::string& buf) {\n"
       "  const size_t p = buf.find(0);\n"
       "  return p == std::string::npos ? 0 : p;\n"
       "}\n"
       "int ColdFine(int n) { return *(new int(n)); }\n",
       {}},
      // ---- whole-program passes (tools/lint/graph.h). The fixture rank
      // table plays the role common/lock_rank.h plays in the real tree;
      // kNetSession/kNetReady are spelled exactly because the poll pass's
      // allowed-rank set is name-based.
      {"common/ranks_fixture.h",
       "#ifndef TARGAD_COMMON_RANKS_FIXTURE_H_\n"
       "#define TARGAD_COMMON_RANKS_FIXTURE_H_\n"
       "#define TARGAD_LOCK_RANK_TABLE(X) \\\n"
       "  X(kLow, 10)                     \\\n"
       "  X(kNetSession, 14)              \\\n"
       "  X(kNetReady, 16)                \\\n"
       "  X(kMid, 20)                     \\\n"
       "  X(kHigh, 30)\n"
       "#endif\n",
       {}},
      // lock-order, same-TU: a direct rank inversion under an active guard
      // (line 11) and an inversion against a TARGAD_REQUIRES entry-held
      // rank merged from the in-class declaration (line 14).
      {"serve/lockorder.cc",
       "class Inverted {\n"
       " public:\n"
       "  void Bad();\n"
       "  void BadLocked() TARGAD_REQUIRES(high_);\n"
       " private:\n"
       "  RankedMutex low_{LockRank::kLow};\n"
       "  RankedMutex high_{LockRank::kHigh};\n"
       "};\n"
       "void Inverted::Bad() {\n"
       "  MutexLock a(&high_);\n"
       "  MutexLock b(&low_);\n"
       "}\n"
       "void Inverted::BadLocked() {\n"
       "  MutexLock c(&low_);\n"
       "}\n",
       {{"lock-order", 11}, {"lock-order", 14}}},
      // lock-order, clean: ascending acquisition, a scoped guard that pops
      // before the next acquire, and an unlock() window — re-acquiring kLow
      // at line 15 is legal only because `lock` released it at line 14.
      {"serve/lockorder_ok.cc",
       "class Ordered {\n"
       " public:\n"
       "  void Fine();\n"
       "  void Sweep() TARGAD_REQUIRES(low_);\n"
       " private:\n"
       "  RankedMutex low_{LockRank::kLow};\n"
       "  RankedMutex high_{LockRank::kHigh};\n"
       "};\n"
       "void Ordered::Fine() {\n"
       "  MutexLock lock(&low_);\n"
       "  {\n"
       "    MutexLock b(&high_);\n"
       "  }\n"
       "  lock.unlock();\n"
       "  MutexLock c(&low_);\n"
       "}\n"
       "void Ordered::Sweep() {\n"
       "  MutexLock d(&high_);\n"
       "}\n",
       {}},
      // lock-order, cross-TU: callees in xtu_b.cc acquire ranks; callers in
      // xtu_a.cc hold kMid at the call. The free-function chain (line 4)
      // propagates a body acquire; the method call (line 5) propagates a
      // TARGAD_ACQUIRE annotation through receiver-type resolution. The
      // ascending call at line 9 stays clean.
      {"net/xtu_b.cc",
       "RankedMutex g_xtu_low{LockRank::kLow};\n"
       "RankedMutex g_xtu_high{LockRank::kHigh};\n"
       "void XtuAcquireLow() {\n"
       "  MutexLock lock(&g_xtu_low);\n"
       "}\n"
       "void XtuAcquireHigh() {\n"
       "  MutexLock lock(&g_xtu_high);\n"
       "}\n"
       "class XtuReady {\n"
       " public:\n"
       "  void Publish() TARGAD_ACQUIRE(ready_mu_);\n"
       " private:\n"
       "  RankedMutex ready_mu_{LockRank::kNetReady};\n"
       "};\n"
       "void XtuReady::Publish() {}\n",
       {}},
      {"net/xtu_a.cc",
       "RankedMutex g_xtu_mid{LockRank::kMid};\n"
       "void StageUnderMid(XtuReady* rs) {\n"
       "  MutexLock lock(&g_xtu_mid);\n"
       "  XtuAcquireLow();\n"
       "  rs->Publish();\n"
       "}\n"
       "void StageClean() {\n"
       "  MutexLock lock(&g_xtu_mid);\n"
       "  XtuAcquireHigh();\n"
       "}\n",
       {{"lock-order", 4}, {"lock-order", 5}}},
      // Transitive purity, cross-TU: the hot entry is clean itself but
      // reaches an allocating helper DEFINED IN ANOTHER FILE; the finding
      // lands in the helper's file.
      {"nn/kernels/chain_a.cc",
       "int DeepScratch(int n);\n"
       "TARGAD_HOT_PATH int HotEntry(int n) { return DeepScratch(n); }\n",
       {}},
      {"nn/kernels/chain_b.cc",
       "int DeepScratch(int n) {\n"
       "  int* p = new int[n];\n"
       "  return p[0];\n"
       "}\n",
       {{"hot-path-alloc", 2}}},
      // TARGAD_HOT_PATH_TRUSTED is an audited boundary: traversal stops and
      // the trusted body is not scanned, so the allocation at line 2 is
      // deliberate and clean.
      {"nn/kernels/trusted.cc",
       "TARGAD_HOT_PATH_TRUSTED int AuditedScratch(int n) {\n"
       "  int* p = new int[n];\n"
       "  return p[0];\n"
       "}\n"
       "TARGAD_HOT_PATH int HotViaTrusted(int n) { return AuditedScratch(n); }\n",
       {}},
      // Poll-thread reachability: the TARGAD_POLL_THREAD root's own poll()
      // is the event wait (exempt, line 6) and kNetSession is an allowed
      // rank (line 7); but the reachable helper takes kMid (line 13) and
      // blocks (line 14), and `backlog` grows without a per-iteration reset
      // (line 9). The allow() hatch still applies (line 15).
      {"net/pollroot.cc",
       "RankedMutex g_sess_mu{LockRank::kNetSession};\n"
       "RankedMutex g_reg_mu{LockRank::kMid};\n"
       "TARGAD_POLL_THREAD void EventLoop(int nfds) {\n"
       "  std::vector<int> backlog;\n"
       "  for (;;) {\n"
       "    poll(nullptr, 0, nfds);\n"
       "    MutexLock lock(&g_sess_mu);\n"
       "    PumpOne(nfds);\n"
       "    backlog.push_back(nfds);\n"
       "  }\n"
       "}\n"
       "void PumpOne(int fd) {\n"
       "  MutexLock lock(&g_reg_mu);\n"
       "  usleep(fd);\n"
       "  nanosleep(0, 0);  // targad-lint: allow(poll-thread-block)\n"
       "}\n",
       {{"poll-thread-alloc-loop", 9},
        {"poll-thread-lock", 13},
        {"poll-thread-block", 14}}},
      // ...and the clean shape: kNetReady guard, batch buffer reset every
      // iteration before it grows.
      {"net/pollroot_ok.cc",
       "RankedMutex g_ready_mu{LockRank::kNetReady};\n"
       "TARGAD_POLL_THREAD void DrainLoop(int nfds) {\n"
       "  std::vector<int> batch;\n"
       "  for (;;) {\n"
       "    poll(nullptr, 0, nfds);\n"
       "    MutexLock lock(&g_ready_mu);\n"
       "    batch.clear();\n"
       "    batch.push_back(nfds);\n"
       "  }\n"
       "}\n",
       {}},
      // IWYU-lite regression: the included header's only symbol is consumed
      // via a macro invocation SPLICED across physical lines. Universal
      // phase-2 splicing makes it one identifier token, so the include is
      // used — the v4 lexer spliced only inside directives and flagged it.
      {"common/splice_macro.h",
       "#ifndef TARGAD_COMMON_SPLICE_MACRO_H_\n"
       "#define TARGAD_COMMON_SPLICE_MACRO_H_\n"
       "#define SPLICE_DCHECK(x) ((void)(x))\n"
       "#endif\n",
       {}},
      {"serve/splice_user.cc",
       "#include \"common/splice_macro.h\"\n"
       "void SpliceUser(int v) {\n"
       "  SPLICE_\\\n"
       "DCHECK(v);\n"
       "}\n",
       {}},
  };
}

}  // namespace

int RunSelfTest() {
  int failures = RunLexerSelfTest();

  const fs::path dir =
      fs::temp_directory_path() /
      ("targad_lint_selftest_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir / "sub");
  fs::create_directories(dir / "nn" / "kernels");
  fs::create_directories(dir / "common");
  fs::create_directories(dir / "serve");
  fs::create_directories(dir / "net");

  const std::vector<SelfCase> cases = Cases();
  for (const SelfCase& c : cases) {
    std::ofstream out(dir / c.file, std::ios::binary);
    out << c.contents;
  }

  const std::vector<Finding> findings = RunLint(dir, {dir.string()});

  std::set<std::pair<std::string, std::string>> got;  // (file:line, rule)
  for (const Finding& f : findings) {
    got.insert({f.file + ":" + std::to_string(f.line), f.rule});
  }
  std::set<std::pair<std::string, std::string>> expected;
  for (const SelfCase& c : cases) {
    for (const auto& [rule, line] : c.expect) {
      expected.insert({c.file + ":" + std::to_string(line), rule});
    }
  }
  for (const auto& e : expected) {
    if (got.count(e) == 0) {
      std::fprintf(stderr, "SELF-TEST FAIL: expected %s at %s, not reported\n",
                   e.second.c_str(), e.first.c_str());
      ++failures;
    }
  }
  for (const auto& g : got) {
    if (expected.count(g) == 0) {
      std::fprintf(stderr, "SELF-TEST FAIL: unexpected %s at %s\n",
                   g.second.c_str(), g.first.c_str());
      ++failures;
    }
  }
  fs::remove_all(dir);
  if (failures == 0) {
    std::fprintf(stderr,
                 "targad_lint self-test PASSED (%zu seeded findings, "
                 "suppression and immunity verified)\n",
                 expected.size());
    return 0;
  }
  return 1;
}

}  // namespace lint
}  // namespace targad
