// Per-file symbol extraction for the cross-TU program model: function
// definitions (with hot-path / poll-thread annotations and lock
// acquisitions), RankedMutex declarations with their table ranks, member
// and local variable types for receiver resolution, method-declaration
// TARGAD_REQUIRES annotations, and the TARGAD_LOCK_RANK_TABLE entries.
//
// Everything here is token-based and purely syntactic — one file in, one
// FileSymbols out, no cross-file knowledge. tools/lint/graph.h links the
// per-file results into a whole-program call graph and runs the three
// analysis passes (lock-order, transitive purity, poll-thread
// reachability) over it.

#ifndef TARGAD_TOOLS_LINT_SYMBOLS_H_
#define TARGAD_TOOLS_LINT_SYMBOLS_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "tools/lint/lexer.h"

namespace targad {
namespace lint {

/// One `MutexLock guard(&mu)` acquisition inside a function body.
struct LockAcquire {
  std::string mutex;  // Last identifier of the mutex argument ("mu_").
  int line = 0;
  /// Indices (into FnSym::acquires) of guards still held when this one is
  /// taken — the within-function "held while acquiring" relation.
  std::vector<size_t> held_before;
  // Resolved by the graph from the declaration + rank table:
  std::string rank_name;  // Table entry name ("kNetReady"), "" unknown.
  int rank = -1;          // Table value, -1 unknown.
};

/// One call site inside a function body.
struct CallSite {
  std::string name;      // Callee identifier.
  std::string receiver;  // Receiver variable or scope qualifier, "" none.
  bool via_member = false;  // Spelled recv.name(...) / recv->name(...).
  bool via_scope = false;   // Spelled Qual::name(...).
  int line = 0;
  /// Indices (into FnSym::acquires) of guards held at this call site.
  std::vector<size_t> held;
};

/// One function definition (a body at namespace/class scope).
struct FnSym {
  std::string name;  // Unqualified name (Foo::Bar -> Bar, "~Foo" dtors).
  std::string cls;   // Enclosing or qualifying class, "" for free functions.
  int line = 0;
  bool hot = false;        // TARGAD_HOT_PATH before the body.
  bool trusted = false;    // TARGAD_HOT_PATH_TRUSTED (audited leaf).
  bool poll_root = false;  // TARGAD_POLL_THREAD (event-loop root).
  size_t body_begin = 0;   // Code-token index of the body's '{'.
  size_t body_end = 0;     // One past the body's '}'.
  std::vector<std::string> requires_mutexes;  // TARGAD_REQUIRES(...) args.
  std::vector<LockAcquire> acquires;
  std::vector<CallSite> calls;
  /// Local variable name -> type identifier, from simple declarations
  /// (`Type v`, `Type* v`, `std::shared_ptr<Type> v`) in the body.
  std::map<std::string, std::string> local_types;
};

/// Everything the program model needs from one file.
struct FileSymbols {
  std::string rel;     // Root-relative path.
  std::string module;  // Layering module of the file.
  /// Non-owning view of the file's code tokens (body spans index into it).
  const std::vector<Token>* code = nullptr;
  std::vector<FnSym> fns;
  /// (class, member) -> LockRank entry name for RankedMutex declarations;
  /// class "" holds file-scope mutexes (e.g. logging's sink mutex).
  std::map<std::pair<std::string, std::string>, std::string> mutex_ranks;
  /// (class, member) -> type identifier, for method-call receiver
  /// resolution (smart-pointer members resolve to their pointee type).
  std::map<std::pair<std::string, std::string>, std::string> member_types;
  /// (class, method) -> TARGAD_REQUIRES args found on in-class method
  /// DECLARATIONS (the definition may live in another file).
  std::map<std::pair<std::string, std::string>, std::vector<std::string>>
      decl_requires;
  /// (class, method) -> TARGAD_ACQUIRE args on in-class declarations: the
  /// method acquires those mutexes when called.
  std::map<std::pair<std::string, std::string>, std::vector<std::string>>
      decl_acquires;
  /// TARGAD_LOCK_RANK_TABLE entries defined in this file: name -> value.
  std::map<std::string, int> rank_table;
};

/// Extracts the symbol-level view of one lexed file. `code` must outlive
/// the result (the FnSym body spans index into it).
FileSymbols ExtractFileSymbols(const std::string& rel,
                               const std::string& module,
                               const std::vector<Token>& code);

}  // namespace lint
}  // namespace targad

#endif  // TARGAD_TOOLS_LINT_SYMBOLS_H_
