#include "tools/lint/layering.h"

namespace targad {
namespace lint {
namespace {

struct ModuleEntry {
  const char* name;
  int layer;
};

// The table IS the architecture. Adding a module means choosing its layer
// here; the lint then holds every include to it.
constexpr ModuleEntry kModules[] = {
    {"common", 0},  {"nn", 1},       {"data", 2},  {"cluster", 3},
    {"eval", 4},    {"core", 5},     {"baselines", 6},
    {"serve", 7},   {"net", 8},
    // Leaf consumers: may include anything, nothing may include them.
    {"tools", kAuxLayer},
    {"bench", kAuxLayer},
    {"tests", kAuxLayer},
    {"examples", kAuxLayer},
};

}  // namespace

int ModuleLayer(const std::string& module) {
  if (module.empty()) return kAuxLayer;  // src-root umbrella header.
  for (const ModuleEntry& m : kModules) {
    if (module == m.name) return m.layer;
  }
  return -1;
}

std::string ModuleOf(const std::string& rel) {
  const size_t slash = rel.find('/');
  return slash == std::string::npos ? std::string() : rel.substr(0, slash);
}

bool IsSrcModule(const std::string& module) {
  const int layer = ModuleLayer(module);
  return layer >= 0 && layer < kAuxLayer;
}

bool IsAuxModule(const std::string& module) {
  return !module.empty() && ModuleLayer(module) == kAuxLayer;
}

}  // namespace lint
}  // namespace targad
