// Hot-path purity pass: functions annotated TARGAD_HOT_PATH (see
// src/common/hot_path.h for the contract) must not allocate, build strings,
// take locks, log, or block. The check is token-based and intra-TU, with
// one level of call-graph propagation: a helper DEFINED in the same file
// and CALLED from a hot function is held to the same bans.
//
// Rule ids (one per ban family, so findings read precisely and self-tests
// can seed each independently):
//
//   hot-path-alloc   new / make_unique / make_shared / malloc family /
//                    push_back / emplace_back / resize / reserve — anything
//                    that can grow the heap. (append on a reused buffer is
//                    deliberately legal: capacity amortizes to zero.)
//   hot-path-string  std::string construction, to_string, stringstreams.
//   hot-path-lock    MutexLock / lock_guard / unique_lock / scoped_lock —
//                    ranked-mutex acquisition is a blocking rendezvous.
//   hot-path-log     TARGAD_LOG (TARGAD_CHECK/TARGAD_DCHECK stay legal:
//                    they are branch-and-abort, not I/O, on the hot path).
//   hot-path-block   sleep/poll/select/epoll_wait/accept/connect and
//                    blocking stdio reads.

#ifndef TARGAD_TOOLS_LINT_PURITY_H_
#define TARGAD_TOOLS_LINT_PURITY_H_

#include <string>
#include <vector>

#include "tools/lint/findings.h"
#include "tools/lint/lexer.h"

namespace targad {
namespace lint {

/// One function definition discovered in a token stream.
struct FnDef {
  std::string name;          // Unqualified name (Foo::Bar -> Bar).
  int line = 0;              // Line of the definition's header.
  bool hot = false;          // TARGAD_HOT_PATH appeared before the body.
  size_t body_begin = 0;     // Code-token index of the body's '{'.
  size_t body_end = 0;       // Code-token index one past the body's '}'.
  std::vector<std::string> calls;  // Unqualified names called in the body.
};

/// Scans `code` (non-comment tokens, preprocessor tokens ignored) for
/// function definitions at namespace/class scope.
std::vector<FnDef> FindFunctionDefs(const std::vector<Token>& code);

/// Runs the purity bans over every TARGAD_HOT_PATH function in `code` and
/// over same-file helpers they call (one level). Findings are returned
/// un-filtered; the caller applies the allow() hatch.
std::vector<Finding> CheckHotPathPurity(const std::string& rel,
                                        const std::vector<Token>& code);

}  // namespace lint
}  // namespace targad

#endif  // TARGAD_TOOLS_LINT_PURITY_H_
