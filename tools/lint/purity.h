// Hot-path purity bans: functions annotated TARGAD_HOT_PATH (see
// src/common/hot_path.h for the contract) must not allocate, build strings,
// take locks, log, or block. This header owns the token-level ban scanner;
// the whole-program transitive pass in tools/lint/graph.h decides WHICH
// bodies to scan (every function reachable from a hot root over the
// cross-TU call graph, stopping at TARGAD_HOT_PATH_TRUSTED boundaries).
//
// Rule ids (one per ban family, so findings read precisely and self-tests
// can seed each independently):
//
//   hot-path-alloc   new / make_unique / make_shared / malloc family /
//                    push_back / emplace_back / resize / reserve — anything
//                    that can grow the heap. (append on a reused buffer is
//                    deliberately legal: capacity amortizes to zero.)
//   hot-path-string  std::string construction, to_string, stringstreams.
//   hot-path-lock    MutexLock / lock_guard / unique_lock / scoped_lock —
//                    ranked-mutex acquisition is a blocking rendezvous.
//   hot-path-log     TARGAD_LOG (TARGAD_CHECK/TARGAD_DCHECK stay legal:
//                    they are branch-and-abort, not I/O, on the hot path).
//   hot-path-block   sleep/poll/select/epoll_wait/accept/connect and
//                    blocking stdio reads.

#ifndef TARGAD_TOOLS_LINT_PURITY_H_
#define TARGAD_TOOLS_LINT_PURITY_H_

#include <string>
#include <vector>

#include "tools/lint/findings.h"
#include "tools/lint/lexer.h"

namespace targad {
namespace lint {

/// Scans the code-token span [body_begin, body_end) of one function body
/// for hot-path ban violations (preprocessor tokens ignored). `suffix` is
/// appended to every message — it names the scanned function and the hot
/// root that reaches it. Findings are returned un-filtered; the caller
/// applies the allow() hatch.
void ScanHotPathBans(const std::string& rel, const std::vector<Token>& code,
                     size_t body_begin, size_t body_end,
                     const std::string& suffix, std::vector<Finding>* out);

}  // namespace lint
}  // namespace targad

#endif  // TARGAD_TOOLS_LINT_PURITY_H_
