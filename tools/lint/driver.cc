#include "tools/lint/driver.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "tools/lint/graph.h"
#include "tools/lint/layering.h"
#include "tools/lint/symbols.h"

namespace targad {
namespace lint {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Finds `word` in `line` as a whole identifier (no word char on either
// side). Returns npos if absent.
size_t FindWord(const std::string& line, const std::string& word,
                size_t from = 0) {
  size_t pos = line.find(word, from);
  while (pos != std::string::npos) {
    const bool left_ok = pos == 0 || !IsWordChar(line[pos - 1]);
    const size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || !IsWordChar(line[end]);
    if (left_ok && right_ok) return pos;
    pos = line.find(word, pos + 1);
  }
  return std::string::npos;
}

// True when `word` at `pos` is followed (after spaces) by an open paren —
// i.e. it is spelled as a call.
bool IsCallAt(const std::string& line, size_t pos, const std::string& word) {
  size_t i = pos + word.size();
  while (i < line.size() && line[i] == ' ') ++i;
  return i < line.size() && line[i] == '(';
}

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

// ---------------------------------------------------------------------------
// The checker
// ---------------------------------------------------------------------------

class Linter {
 public:
  explicit Linter(fs::path root) : root_(std::move(root)) {}

  /// First pass over every file: collect the names of functions declared to
  /// return Result<...> (and, separately, Status) for the
  /// return-not-ok-result heuristic. A name declared with BOTH return types
  /// somewhere in the tree is ambiguous (an overload set like Fit) and is
  /// never flagged.
  void CollectResultFunctions(const std::string& clean) {
    const std::vector<std::string> lines = SplitLines(clean);
    for (size_t i = 0; i < lines.size(); ++i) {
      const std::string& line = lines[i];
      size_t pos = FindWord(line, "Result");
      while (pos != std::string::npos) {
        size_t j = pos + 6;
        if (j < line.size() && line[j] == '<') {
          // Skip the template argument list (angle-bracket balanced).
          int depth = 0;
          while (j < line.size()) {
            if (line[j] == '<') ++depth;
            if (line[j] == '>' && --depth == 0) { ++j; break; }
            ++j;
          }
          CollectDeclaredName(lines, i, line.substr(std::min(j, line.size())),
                              &result_functions_);
        }
        pos = FindWord(line, "Result", pos + 1);
      }
      size_t spos = FindWord(line, "Status");
      while (spos != std::string::npos) {
        CollectDeclaredName(lines, i, line.substr(spos + 6),
                            &status_functions_);
        spos = FindWord(line, "Status", spos + 1);
      }
    }
  }

  void CheckFile(const FileData& fd) {
    cur_toks_ = &fd.toks;
    const std::vector<std::string> clean_lines = SplitLines(fd.clean);
    const std::string& rel = fd.rel;
    const bool is_header = fd.path.extension() == ".h";
    // Library-code rules do not apply to the leaf-consumer modules: benches
    // printf their tables, tests hand-roll reference kernels to compare
    // against, and the lint tool itself logs with fprintf.
    const bool library = !IsAuxModule(fd.module);

    if (is_header) CheckIncludeGuard(rel, clean_lines);

    for (size_t i = 0; i < clean_lines.size(); ++i) {
      const std::string& line = clean_lines[i];
      const int ln = static_cast<int>(i) + 1;

      if (is_header && FindWord(line, "using") != std::string::npos) {
        const size_t u = FindWord(line, "using");
        const size_t n = FindWord(line, "namespace", u);
        if (n != std::string::npos &&
            line.find_first_not_of(' ', u + 5) == n) {
          Report(rel, ln, "using-namespace-header",
                 "`using namespace` in a header leaks into every includer");
        }
      }

      if (!library) continue;

      for (const char* fn : {"rand", "srand"}) {
        const size_t pos = FindWord(line, fn);
        if (pos != std::string::npos && IsCallAt(line, pos, fn)) {
          Report(rel, ln, "banned-rand",
                 std::string(fn) +
                     "() is banned; use common/rng.h (seeded, reproducible)");
        }
      }

      for (const char* io : {"printf", "fprintf"}) {
        const size_t pos = FindWord(line, io);
        if (pos != std::string::npos && IsCallAt(line, pos, io)) {
          Report(rel, ln, "banned-io",
                 std::string(io) + "() logging is banned; use TARGAD_LOG");
        }
      }
      for (const char* stream : {"std::cout", "std::cerr"}) {
        if (line.find(stream) != std::string::npos) {
          Report(rel, ln, "banned-io",
                 std::string(stream) + " logging is banned; use TARGAD_LOG");
        }
      }

      if (FindWord(line, "throw") != std::string::npos) {
        Report(rel, ln, "naked-throw",
               "`throw` is banned; fallible APIs return Status/Result");
      }

      CheckReturnNotOk(rel, ln, line);
      CheckRawMutexLock(rel, ln, line);
    }

    if (library) {
      if (is_header) CheckMutexGuardedBy(rel, clean_lines);
      CheckRawDenseLoop(rel, clean_lines);
    }
    CheckLockRankTable(rel, clean_lines);
    cur_toks_ = nullptr;
  }

  // -------------------------------------------------------------------------
  // Tree-wide include passes: layering back-edges, .cc includes, cycles,
  // unused includes.
  // -------------------------------------------------------------------------
  void CheckIncludeTree(const std::vector<FileData>& files) {
    std::map<std::string, const FileData*> by_rel;
    for (const FileData& fd : files) by_rel.emplace(fd.rel, &fd);

    // Resolve an include path to a scanned file: as written first, then
    // relative to the includer's own directory (tests/ includes
    // "test_util.h" with no prefix).
    auto resolve = [&by_rel](const FileData& fd,
                             const std::string& path) -> const FileData* {
      auto it = by_rel.find(path);
      if (it != by_rel.end()) return it->second;
      const size_t slash = fd.rel.rfind('/');
      if (slash != std::string::npos) {
        it = by_rel.find(fd.rel.substr(0, slash + 1) + path);
        if (it != by_rel.end()) return it->second;
      }
      return nullptr;
    };

    // Lazily computed IWYU-lite ingredients.
    std::map<const FileData*, std::set<std::string>> header_symbols;
    std::map<const FileData*, std::set<std::string>> used_idents;
    auto symbols_of = [&](const FileData* h) -> const std::set<std::string>& {
      auto it = header_symbols.find(h);
      if (it == header_symbols.end()) {
        it = header_symbols.emplace(h, CollectHeaderSymbols(h->toks.code()))
                 .first;
      }
      return it->second;
    };
    auto used_of = [&](const FileData* f) -> const std::set<std::string>& {
      auto it = used_idents.find(f);
      if (it == used_idents.end()) {
        it = used_idents.emplace(f, CollectUsedIdentifiers(f->toks.code()))
                 .first;
      }
      return it->second;
    };

    for (const FileData& fd : files) {
      cur_toks_ = &fd.toks;
      const int my_layer = ModuleLayer(fd.module);
      for (const IncludeDirective& inc : fd.includes) {
        if (inc.system) continue;

        if (EndsWith(inc.path, ".cc") || EndsWith(inc.path, ".cpp")) {
          Report(fd.rel, inc.line, "include-cc",
                 "#include of an implementation file (" + inc.path +
                     ") — move shared code into a header");
        }

        const FileData* target = resolve(fd, inc.path);
        const std::string target_module =
            target != nullptr ? target->module : ModuleOf(inc.path);
        const int target_layer = ModuleLayer(target_module);
        if (my_layer >= 0 && target_layer >= 0 && target_layer > my_layer) {
          Report(fd.rel, inc.line, "include-layering",
                 fd.module + " (layer " + std::to_string(my_layer) +
                     ") must not include " + target_module + " (layer " +
                     std::to_string(target_layer) +
                     ") — the declared order is common -> nn -> data -> "
                     "cluster -> eval -> core -> baselines -> serve -> net "
                     "-> aux (tools/lint/layering.cc)");
        }

        // IWYU-lite: a project header none of whose public symbols appear
        // in this TU is dead weight. Generous symbol model ⇒ a report
        // means the include really is unused. src-only: aux TUs include
        // umbrella-style on purpose.
        if (IsSrcModule(fd.module) && !inc.exempt && target != nullptr &&
            target->path.extension() == ".h") {
          const bool own_header =
              fd.rel.size() > 3 && EndsWith(fd.rel, ".cc") &&
              fd.rel.compare(0, fd.rel.size() - 3, target->rel, 0,
                             target->rel.size() - 2) == 0;
          const std::set<std::string>& symbols = symbols_of(target);
          if (!own_header && !symbols.empty()) {
            const std::set<std::string>& used = used_of(&fd);
            bool any = false;
            for (const std::string& s : symbols) {
              if (used.count(s) > 0) {
                any = true;
                break;
              }
            }
            if (!any) {
              Report(fd.rel, inc.line, "unused-include",
                     inc.path +
                         " is included but none of its symbols are used "
                         "here; drop it (or mark `// IWYU pragma: keep`)");
            }
          }
        }
      }
      cur_toks_ = nullptr;
    }

    CheckIncludeCycles(files, by_rel);
  }

  const std::vector<Finding>& findings() const { return findings_; }

  std::string Relative(const fs::path& path) const {
    std::error_code ec;
    const fs::path rel = fs::relative(path, root_, ec);
    std::string s =
        (ec || rel.empty()) ? path.generic_string() : rel.generic_string();
    // Sibling trees of --root (tools/, tests/, bench/, examples/) come out
    // as "../tools/...": strip to the repo-relative form, which is also the
    // include-guard convention those trees use (TARGAD_TESTS_..._H_).
    while (s.rfind("../", 0) == 0) s = s.substr(3);
    return s;
  }

 private:
  // Records the identifier a return type is declaring, given the text after
  // the type on that line (or, when the type sits on its own line, the next
  // line). The name must be an identifier immediately followed by '('.
  static void CollectDeclaredName(const std::vector<std::string>& lines,
                                  size_t i, std::string rest,
                                  std::set<std::string>* out) {
    if (rest.find_first_not_of(' ') == std::string::npos &&
        i + 1 < lines.size()) {
      rest = lines[i + 1];
    }
    const size_t k = rest.find_first_not_of(' ');
    if (k == std::string::npos || !IsWordChar(rest[k]) ||
        std::isdigit(static_cast<unsigned char>(rest[k]))) {
      return;
    }
    size_t e = k;
    while (e < rest.size() && IsWordChar(rest[e])) ++e;
    size_t p = e;
    while (p < rest.size() && rest[p] == ' ') ++p;
    if (p < rest.size() && rest[p] == '(') out->insert(rest.substr(k, e - k));
  }

  static std::string ExpectedGuard(const std::string& rel) {
    std::string macro = "TARGAD_";
    for (const char c : rel) {
      macro += IsWordChar(c)
                   ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                   : '_';
    }
    return macro + "_";  // common/status.h -> TARGAD_COMMON_STATUS_H_
  }

  void CheckIncludeGuard(const std::string& rel,
                         const std::vector<std::string>& clean_lines) {
    const std::string expected = ExpectedGuard(rel);
    int ifndef_line = 0;
    std::string got;
    for (size_t i = 0; i < clean_lines.size(); ++i) {
      std::istringstream in(clean_lines[i]);
      std::string tok, macro;
      in >> tok;
      if (tok.empty() || tok[0] != '#') continue;
      if (tok != "#ifndef") break;  // Some other directive came first.
      in >> macro;
      ifndef_line = static_cast<int>(i) + 1;
      got = macro;
      // The next preprocessor token must be the matching #define.
      for (size_t j = i + 1; j < clean_lines.size(); ++j) {
        std::istringstream in2(clean_lines[j]);
        std::string tok2, macro2;
        in2 >> tok2;
        if (tok2.empty() || tok2[0] != '#') continue;
        if (tok2 != "#define") got.clear();
        in2 >> macro2;
        if (macro2 != got) got.clear();
        break;
      }
      break;
    }
    if (got != expected) {
      Report(rel, std::max(ifndef_line, 1), "include-guard",
             "expected include guard " + expected +
                 (got.empty() ? " (missing or #define mismatch)"
                              : ", found " + got));
    }
  }

  void CheckReturnNotOk(const std::string& rel, int ln,
                        const std::string& line) {
    const size_t pos = FindWord(line, "TARGAD_RETURN_NOT_OK");
    if (pos == std::string::npos) return;
    // Skip the macro's own definition.
    if (line.find("#define") != std::string::npos) return;
    const size_t open = line.find('(', pos);
    if (open == std::string::npos) return;
    // The argument may run past this line; a line-bounded window is enough
    // for the heuristics below.
    const std::string arg = line.substr(open + 1);
    if (arg.find("ValueOrDie") != std::string::npos) {
      Report(rel, ln, "return-not-ok-result",
             "TARGAD_RETURN_NOT_OK on a ValueOrDie() value — it takes a "
             "Status; use TARGAD_ASSIGN_OR_RETURN");
      return;
    }
    // `expr.status()` adapts a Result to its Status — always legal.
    if (arg.find(".status()") != std::string::npos) return;
    for (const std::string& fn : result_functions_) {
      if (status_functions_.count(fn) > 0) continue;  // Ambiguous overload.
      const size_t fp = FindWord(arg, fn);
      if (fp != std::string::npos && IsCallAt(arg, fp, fn)) {
        Report(rel, ln, "return-not-ok-result",
               "TARGAD_RETURN_NOT_OK on Result-returning " + fn +
                   "(); use TARGAD_ASSIGN_OR_RETURN");
        return;
      }
    }
  }

  // True when `name` reads as a mutex: `mu`, a `mu_`/`_mu` prefix/suffix
  // convention, or "mutex" anywhere (case-insensitive).
  static bool LooksLikeMutexName(const std::string& name) {
    if (name == "mu" || name == "mu_") return true;
    if (EndsWith(name, "mu_") || EndsWith(name, "_mu")) return true;
    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(), [](char c) {
      return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    });
    return lower.find("mutex") != std::string::npos;
  }

  // raw-mutex-lock: .lock()/.unlock()/.try_lock() spelled directly on a
  // mutex-named receiver. RAII guards (MutexLock) are the only blessed way
  // to lock — they are what Clang's thread-safety analysis can follow, and
  // what the rank checker instruments. Calls on non-mutex receivers (e.g. a
  // MutexLock named `lock`) are fine.
  void CheckRawMutexLock(const std::string& rel, int ln,
                         const std::string& line) {
    for (const char* method : {"lock", "unlock", "try_lock"}) {
      size_t pos = FindWord(line, method);
      while (pos != std::string::npos) {
        if (IsCallAt(line, pos, method)) {
          size_t recv_end = std::string::npos;
          if (pos >= 1 && line[pos - 1] == '.') {
            recv_end = pos - 1;
          } else if (pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>') {
            recv_end = pos - 2;
          }
          if (recv_end != std::string::npos) {
            size_t recv_begin = recv_end;
            while (recv_begin > 0 && IsWordChar(line[recv_begin - 1])) {
              --recv_begin;
            }
            const std::string recv =
                line.substr(recv_begin, recv_end - recv_begin);
            if (!recv.empty() && LooksLikeMutexName(recv)) {
              Report(rel, ln, "raw-mutex-lock",
                     recv + "." + std::string(method) +
                         "() bypasses RAII locking; hold mutexes via "
                         "MutexLock (common/lock_rank.h)");
            }
          }
        }
        pos = FindWord(line, method, pos + 1);
      }
    }
  }

  // mutex-guarded-by: inside a class body, every member field declared
  // BELOW a mutex member must carry TARGAD_GUARDED_BY. The project
  // convention is: mutex first, its guarded fields directly below it;
  // unguarded fields (ctor-immutable configuration, externally serialized
  // state) go ABOVE the mutex. Exempt: condition variables (waiting is not
  // guarded state), atomics (their own synchronization), other mutexes,
  // and static/constexpr/const/using/typedef/friend declarations.
  void CheckMutexGuardedBy(const std::string& rel,
                           const std::vector<std::string>& clean_lines) {
    bool in_mutex_scope = false;
    for (size_t i = 0; i < clean_lines.size(); ++i) {
      const std::string& line = clean_lines[i];
      const size_t first = line.find_first_not_of(" \t");
      if (first == std::string::npos) continue;
      if (line.compare(first, 2, "};") == 0) {
        in_mutex_scope = false;  // End of the (possibly nested) class body.
        continue;
      }
      const size_t last = line.find_last_not_of(" \t");
      const bool is_mutex_decl =
          (FindWord(line, "RankedMutex") != std::string::npos ||
           line.find("std::mutex") != std::string::npos) &&
          line.find('*') == std::string::npos &&
          line.find('&') == std::string::npos &&
          line.find('(') == std::string::npos &&
          last != std::string::npos && line[last] == ';';
      if (is_mutex_decl) {
        in_mutex_scope = true;
        continue;
      }
      if (!in_mutex_scope) continue;
      if (line.find("TARGAD_GUARDED_BY") != std::string::npos ||
          line.find("TARGAD_PT_GUARDED_BY") != std::string::npos ||
          line.find("condition_variable") != std::string::npos ||
          line.find("std::atomic") != std::string::npos ||
          FindWord(line, "static") != std::string::npos ||
          FindWord(line, "constexpr") != std::string::npos ||
          FindWord(line, "using") != std::string::npos ||
          FindWord(line, "typedef") != std::string::npos ||
          FindWord(line, "friend") != std::string::npos ||
          line.compare(first, 6, "const ") == 0) {
        continue;
      }
      const std::string field = FieldNameIfDecl(line);
      if (!field.empty()) {
        Report(rel, static_cast<int>(i) + 1, "mutex-guarded-by",
               "member `" + field +
                   "` is declared below a mutex but lacks "
                   "TARGAD_GUARDED_BY; unguarded fields go above the mutex");
      }
    }
  }

  // Returns the member field a line declares — an identifier ending in `_`
  // whose next non-space character is `;`, `=`, or `{` — or "" when the
  // line does not read as a field declaration. Method declarations never
  // match: method names do not end in `_`, and a trailing annotation
  // argument like EXCLUDES(mu_) leaves `mu_` followed by `)`.
  static std::string FieldNameIfDecl(const std::string& line) {
    for (size_t i = 0; i < line.size();) {
      if (!IsWordChar(line[i])) {
        ++i;
        continue;
      }
      size_t end = i;
      while (end < line.size() && IsWordChar(line[end])) ++end;
      if (line[end - 1] == '_') {
        size_t k = end;
        while (k < line.size() && line[k] == ' ') ++k;
        if (k < line.size() &&
            (line[k] == ';' || line[k] == '=' || line[k] == '{')) {
          return line.substr(i, end - i);
        }
      }
      i = end;
    }
    return std::string();
  }

  // lock-rank-table: parses every `#define TARGAD_LOCK_RANK_TABLE` X-macro
  // body and reports duplicate lock names and duplicate integer ranks.
  // Unique integer ranks form a total order, which makes the runtime
  // acquire-ascending policy acyclic by construction — a duplicate rank
  // would let two locks be taken in either order without detection.
  void CheckLockRankTable(const std::string& rel,
                          const std::vector<std::string>& clean_lines) {
    for (size_t i = 0; i < clean_lines.size(); ++i) {
      if (clean_lines[i].find("#define") == std::string::npos ||
          clean_lines[i].find("TARGAD_LOCK_RANK_TABLE") == std::string::npos) {
        continue;
      }
      std::map<std::string, int> name_line;       // entry name -> first line
      std::map<long, std::string> rank_owner;     // rank value -> first name
      size_t j = i;
      bool continued = true;
      while (j < clean_lines.size() && continued) {
        const std::string& l = clean_lines[j];
        const size_t last = l.find_last_not_of(" \t");
        continued = last != std::string::npos && l[last] == '\\';
        const int ln = static_cast<int>(j) + 1;
        size_t p = 0;
        while ((p = FindWord(l, "X", p)) != std::string::npos) {
          const size_t open = p + 1;
          ++p;
          if (open >= l.size() || l[open] != '(') continue;
          size_t k = l.find_first_not_of(' ', open + 1);
          if (k == std::string::npos || !IsWordChar(l[k])) continue;
          size_t name_end = k;
          while (name_end < l.size() && IsWordChar(l[name_end])) ++name_end;
          const std::string name = l.substr(k, name_end - k);
          size_t v = l.find_first_not_of(" ,", name_end);
          if (v == std::string::npos) continue;
          size_t v_end = v;
          if (v_end < l.size() && l[v_end] == '-') ++v_end;
          while (v_end < l.size() &&
                 std::isdigit(static_cast<unsigned char>(l[v_end]))) {
            ++v_end;
          }
          if (v_end == v || v_end >= l.size() || l[v_end] != ')') continue;
          const long value = std::stol(l.substr(v, v_end - v));
          if (!name_line.emplace(name, ln).second) {
            Report(rel, ln, "lock-rank-table",
                   "duplicate lock-rank entry `" + name + "`");
          }
          const auto [owner, inserted] = rank_owner.emplace(value, name);
          if (!inserted && owner->second != name) {
            Report(rel, ln, "lock-rank-table",
                   "rank " + std::to_string(value) + " assigned to both `" +
                       owner->second + "` and `" + name +
                       "`; ranks must be unique (a total order is what "
                       "makes acquire-ascending deadlock-free)");
          }
        }
        ++j;
      }
      i = j - 1;
    }
  }

  // raw-dense-loop: flags multiply-accumulate lines over subscripted
  // operands inside >= 2 nested `for` loops — the signature of a matmul /
  // distance computation written by hand instead of through nn/kernels.
  //
  // The nesting tracker is character-level: it follows brace depth and a
  // stack of for-scopes, handling both braced bodies (popped when their
  // closing brace arrives) and braceless bodies (popped at the next `;` at
  // parenthesis depth zero — a chain of braceless `for`s collapses at one
  // statement). A line fires when, at any point on it, the for-stack is at
  // least two deep AND it contains `+=` whose right-hand side multiplies
  // (`*`) AND it references two or more subscripted operands (`x[...]` or
  // `At(...)`). Single-subscript accumulations over a hoisted scalar
  // (`var[j] += r * diff * diff`) stay legal: one indexed operand is a
  // weighted reduction, not a dense kernel.
  void CheckRawDenseLoop(const std::string& rel,
                         const std::vector<std::string>& clean_lines) {
    if (rel.find("nn/kernels/") != std::string::npos) return;
    struct ForScope {
      bool braced = false;
      int body_brace_depth = 0;
    };
    std::vector<ForScope> stack;
    int brace_depth = 0;
    int paren_depth = 0;
    int header_depth = -1;  // Paren depth inside a pending for-header, or -1.
    bool awaiting_body = false;
    for (size_t i = 0; i < clean_lines.size(); ++i) {
      const std::string& line = clean_lines[i];
      size_t max_for_depth = stack.size();
      for (size_t p = 0; p < line.size(); ++p) {
        const char c = line[p];
        if (awaiting_body && c != ' ' && c != '\t') {
          awaiting_body = false;
          if (c == '{') {
            stack.back().braced = true;
            stack.back().body_brace_depth = ++brace_depth;
            continue;
          }
          // Braceless body: the scope pops at the statement-ending `;`.
        }
        if (IsWordChar(c)) {
          size_t e = p;
          while (e < line.size() && IsWordChar(line[e])) ++e;
          if (e - p == 3 && line.compare(p, 3, "for") == 0 &&
              header_depth == -1) {
            const size_t q = line.find_first_not_of(' ', e);
            if (q != std::string::npos && line[q] == '(') {
              header_depth = paren_depth + 1;  // Depth once '(' is consumed.
            }
          }
          p = e - 1;
          continue;
        }
        if (c == '(') {
          ++paren_depth;
          continue;
        }
        if (c == ')') {
          --paren_depth;
          if (header_depth != -1 && paren_depth < header_depth) {
            header_depth = -1;
            awaiting_body = true;
            stack.push_back(ForScope{});
            max_for_depth = std::max(max_for_depth, stack.size());
          }
          continue;
        }
        if (c == '{') {
          ++brace_depth;
          continue;
        }
        if (c == '}') {
          --brace_depth;
          while (!stack.empty() && stack.back().braced &&
                 stack.back().body_brace_depth > brace_depth) {
            stack.pop_back();
            // A braceless parent's body was that braced statement.
            while (!stack.empty() && !stack.back().braced) stack.pop_back();
          }
          continue;
        }
        if (c == ';' && paren_depth == 0 && header_depth == -1) {
          while (!stack.empty() && !stack.back().braced) stack.pop_back();
          continue;
        }
      }
      if (max_for_depth < 2) continue;
      const size_t plus_eq = line.find("+=");
      if (plus_eq == std::string::npos) continue;
      // A `*` at subscript/argument depth is index arithmetic
      // (`a[i * n + j]`), not a value multiply; only a top-level `*` on the
      // right-hand side makes this a multiply-accumulate.
      bool multiplies = false;
      int rhs_depth = 0;
      for (size_t p = plus_eq + 2; p < line.size(); ++p) {
        if (line[p] == '[' || line[p] == '(') ++rhs_depth;
        if (line[p] == ']' || line[p] == ')') --rhs_depth;
        if (line[p] == '*' && rhs_depth == 0) {
          multiplies = true;
          break;
        }
      }
      if (!multiplies) continue;
      size_t subscripts = 0;
      for (size_t p = 1; p < line.size(); ++p) {
        if (line[p] == '[' &&
            (IsWordChar(line[p - 1]) || line[p - 1] == ']' ||
             line[p - 1] == ')')) {
          ++subscripts;
        }
      }
      size_t at_pos = FindWord(line, "At");
      while (at_pos != std::string::npos) {
        if (IsCallAt(line, at_pos, "At")) ++subscripts;
        at_pos = FindWord(line, "At", at_pos + 1);
      }
      if (subscripts < 2) continue;
      Report(rel, static_cast<int>(i) + 1, "raw-dense-loop",
             "multiply-accumulate over subscripted operands inside nested "
             "loops — use the nn/kernels primitives (Gemm, "
             "FusedAffineActivation, SquaredDistances, Axpy)");
    }
  }

  // Depth-first search for include cycles among the scanned files. A
  // back-edge to a file on the current stack is reported once, at the
  // include that closes the cycle, with the full chain in the message.
  void CheckIncludeCycles(const std::vector<FileData>& files,
                          const std::map<std::string, const FileData*>& by_rel) {
    enum class Color { kWhite, kGray, kBlack };
    std::map<const FileData*, Color> color;
    std::vector<const FileData*> chain;

    auto resolve = [&by_rel](const FileData& fd,
                             const std::string& path) -> const FileData* {
      auto it = by_rel.find(path);
      if (it != by_rel.end()) return it->second;
      const size_t slash = fd.rel.rfind('/');
      if (slash != std::string::npos) {
        it = by_rel.find(fd.rel.substr(0, slash + 1) + path);
        if (it != by_rel.end()) return it->second;
      }
      return nullptr;
    };

    std::function<void(const FileData*)> visit = [&](const FileData* fd) {
      color[fd] = Color::kGray;
      chain.push_back(fd);
      for (const IncludeDirective& inc : fd->includes) {
        if (inc.system) continue;
        const FileData* target = resolve(*fd, inc.path);
        if (target == nullptr) continue;
        const Color c =
            color.count(target) > 0 ? color[target] : Color::kWhite;
        if (c == Color::kGray) {
          std::string cycle;
          bool in_cycle = false;
          for (const FileData* f : chain) {
            if (f == target) in_cycle = true;
            if (in_cycle) cycle += f->rel + " -> ";
          }
          cycle += target->rel;
          cur_toks_ = &fd->toks;
          Report(fd->rel, inc.line, "include-cycle",
                 "include cycle: " + cycle);
          cur_toks_ = nullptr;
        } else if (c == Color::kWhite) {
          visit(target);
        }
      }
      chain.pop_back();
      color[fd] = Color::kBlack;
    };

    for (const FileData& fd : files) {
      if (color.count(&fd) == 0) visit(&fd);
    }
  }

  // Applies the allow() escape hatch, then records the finding.
  void Report(const std::string& rel, int ln, const std::string& rule,
              const std::string& message) {
    if (cur_toks_ != nullptr && IsAllowed(*cur_toks_, ln, rule)) return;
    findings_.push_back({rel, ln, rule, message});
  }

  fs::path root_;
  const TokenFile* cur_toks_ = nullptr;
  std::set<std::string> result_functions_;
  std::set<std::string> status_functions_;
  std::vector<Finding> findings_;
};

bool IsSourceFile(const fs::path& path) {
  return path.extension() == ".h" || path.extension() == ".cc" ||
         path.extension() == ".cpp";
}

std::vector<fs::path> GatherFiles(const std::vector<std::string>& paths) {
  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && IsSourceFile(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(p)) {
      files.push_back(p);
    } else {
      std::fprintf(stderr, "targad_lint: no such path: %s\n", p.c_str());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

std::vector<Finding> RunLint(const fs::path& root,
                             const std::vector<std::string>& paths) {
  return RunLint(root, paths, LintOptions{});
}

std::vector<Finding> RunLint(const fs::path& root,
                             const std::vector<std::string>& paths,
                             const LintOptions& options) {
  Linter linter(root);
  std::vector<FileData> data;
  for (const fs::path& f : GatherFiles(paths)) {
    FileData fd;
    fd.path = f;
    fd.rel = linter.Relative(f);
    fd.module = ModuleOf(fd.rel);
    const std::string raw = ReadFile(f);
    std::vector<Token> tokens = Lex(raw);
    fd.clean = CleanText(raw, tokens);
    fd.toks = TokenFile(std::move(tokens));
    fd.includes = ExtractIncludes(fd.toks);
    data.push_back(std::move(fd));
  }
  if (options.per_file) {
    for (const FileData& fd : data) linter.CollectResultFunctions(fd.clean);
    for (const FileData& fd : data) linter.CheckFile(fd);
    linter.CheckIncludeTree(data);
  }
  std::vector<Finding> findings = linter.findings();

  if (options.analyze) {
    // Whole-program passes: extract per-file symbols, link the cross-TU
    // model, run the three analyses, then apply the allow() hatch against
    // each finding's OWN file (the passes cross file boundaries, so the
    // current-file token stream the per-file rules use does not apply).
    std::vector<FileSymbols> symbols;
    symbols.reserve(data.size());
    for (const FileData& fd : data) {
      symbols.push_back(ExtractFileSymbols(fd.rel, fd.module, fd.toks.code()));
    }
    const ProgramModel pm = BuildProgramModel(std::move(symbols));
    std::map<std::string, const TokenFile*> toks_by_rel;
    for (const FileData& fd : data) toks_by_rel.emplace(fd.rel, &fd.toks);
    auto add_filtered = [&](const std::vector<Finding>& raw_findings) {
      for (const Finding& f : raw_findings) {
        auto it = toks_by_rel.find(f.file);
        if (it != toks_by_rel.end() && IsAllowed(*it->second, f.line, f.rule)) {
          continue;
        }
        findings.push_back(f);
      }
    };
    add_filtered(CheckLockOrder(pm));
    add_filtered(CheckTransitivePurity(pm));
    add_filtered(CheckPollThreadReachability(pm));
  }
  return findings;
}

}  // namespace lint
}  // namespace targad
