// Finding record shared by every targad-lint pass, plus the allow() escape
// hatch. The hatch reads real comment TOKENS (not raw line text), so an
// "allow(...)" spelled inside a string literal can never suppress a rule.

#ifndef TARGAD_TOOLS_LINT_FINDINGS_H_
#define TARGAD_TOOLS_LINT_FINDINGS_H_

#include <string>

#include "tools/lint/lexer.h"

namespace targad {
namespace lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// True when a `targad-lint: allow(<rule>[,...])` comment on `line` or the
/// line directly above names `rule` (or `*`).
bool IsAllowed(const TokenFile& tf, int line, const std::string& rule);

}  // namespace lint
}  // namespace targad

#endif  // TARGAD_TOOLS_LINT_FINDINGS_H_
