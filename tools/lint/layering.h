// The checked-in module-layering table for the include-layering DAG pass.
//
// Every first-level directory under src/ is a module with a declared layer
// number; a file may only include headers from modules at the SAME or a
// LOWER layer. The declared order is:
//
//   common(0) -> nn(1) -> data(2) -> cluster(3) -> eval(4) -> core(5)
//     -> baselines(6) -> serve(7) -> net(8)
//     -> {tools, bench, tests, examples, src-root umbrella}(9)
//
// eval sits BELOW core (not beside baselines) because the dependency is
// intrinsic to the paper's method: core/targad.cc selects the best epoch by
// validation AUPRC (eval::Auprc) and core/ood.cc sweeps the OOD threshold
// by macro-F1 (eval::ConfusionMatrix) — while eval itself depends only on
// common. Declaring the order that matches the real DAG keeps the tree at
// zero back-edges instead of blessing two with suppressions.

#ifndef TARGAD_TOOLS_LINT_LAYERING_H_
#define TARGAD_TOOLS_LINT_LAYERING_H_

#include <string>

namespace targad {
namespace lint {

/// The aux layer: leaf consumers (tools, bench, tests, examples, and the
/// src-root umbrella header) that may include anything.
inline constexpr int kAuxLayer = 9;

/// Layer number for `module`, or -1 when the module is not in the table
/// (self-test scratch dirs, third-party includes like gtest/).
int ModuleLayer(const std::string& module);

/// First path component of a root-relative path ("common/status.h" ->
/// "common"). A bare filename ("targad.h") maps to "" — the src-root
/// umbrella, which is aux-layer.
std::string ModuleOf(const std::string& rel);

/// True for the library modules under src/ — the scope of the library-code
/// rules (banned-io, raw-dense-loop, ...) and of unused-include.
bool IsSrcModule(const std::string& module);

/// True for the leaf-consumer modules (tools/bench/tests/examples) where
/// library-code rules do not apply (benches printf their tables; tests
/// hand-roll reference kernels on purpose).
bool IsAuxModule(const std::string& module);

}  // namespace lint
}  // namespace targad

#endif  // TARGAD_TOOLS_LINT_LAYERING_H_
